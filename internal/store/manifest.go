// Package store is the crash-safe state store behind CAP'NN's durable
// artifacts: trained networks, firing-rate profiles, Algorithm 1
// matrices, and the serve tier's mask cache. Every piece of state a
// process would otherwise lose to a kill -9 is committed here as an
// atomic, versioned, CRC-checksummed generation:
//
//	dir/
//	  gen-0000000001/          one committed generation
//	    MANIFEST               schema version + per-artifact size/CRC-32
//	    model                  artifact files named by the manifest
//	    rates
//	  gen-0000000002/
//	  tmp-*                    in-flight commits (swept on Open)
//	  corrupt-gen-*            generations that failed verification
//
// A commit writes every artifact into a tmp- directory, fsyncs each
// file, writes the manifest last, fsyncs the directory, and only then
// renames it to gen-N (rename is atomic on POSIX) and fsyncs the
// parent. A crash at any point leaves either the previous generations
// untouched plus a tmp- directory (ignored and swept), or a fully
// durable new generation — never a half-written visible one.
//
// Reads verify: Latest walks generations newest-first, checks the
// manifest's own checksum and every artifact's size and CRC-32, and
// rolls back to the newest generation that verifies, renaming failed
// ones to corrupt-gen-* so they are kept for inspection but never
// served or overwritten.
package store

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// SchemaVersion is the manifest schema this package writes. Readers
// reject manifests with a newer version: a rolled-back binary must not
// misread state written by a newer one.
const SchemaVersion = 1

const (
	manifestMagic = "capnn-store-manifest"
	manifestName  = "MANIFEST"
)

// ArtifactInfo describes one artifact file of a generation.
type ArtifactInfo struct {
	// Name is the artifact's file name within the generation directory.
	Name string
	// Size is the exact byte length of the artifact file.
	Size int64
	// CRC is the IEEE CRC-32 of the artifact's contents.
	CRC uint32
}

// Manifest is the per-generation table of contents. It is serialized
// in a line-oriented text format with a trailing checksum line, so a
// torn manifest write is detected exactly like a torn artifact write:
//
//	capnn-store-manifest v1
//	generation 3
//	created 1722945600000000000
//	artifact model 123456 9a0b1c2d
//	artifact rates 2048 00ff00ff
//	sum 1a2b3c4d
type Manifest struct {
	// Version is the manifest schema version (SchemaVersion when written
	// by this package).
	Version int
	// Generation is the generation number the manifest belongs to; it
	// must match the gen-N directory name, so a manifest copied between
	// directories fails verification.
	Generation int
	// CreatedUnixNano is the commit wall-clock time.
	CreatedUnixNano int64
	// Artifacts lists every artifact file, in the order written.
	Artifacts []ArtifactInfo
}

// Artifact returns the named artifact's info, or false.
func (m *Manifest) Artifact(name string) (ArtifactInfo, bool) {
	for _, a := range m.Artifacts {
		if a.Name == name {
			return a, true
		}
	}
	return ArtifactInfo{}, false
}

// validArtifactName reports whether name is safe as a file name inside
// a generation directory: non-empty, no path structure, not the
// manifest itself, and printable ASCII without spaces (the manifest
// format is space-delimited).
func validArtifactName(name string) bool {
	if name == "" || name == manifestName || name == "." || name == ".." {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '-' || r == '_':
		default:
			return false
		}
	}
	return true
}

// Encode renders the manifest in its canonical byte form, checksum
// line included.
func (m *Manifest) Encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s v%d\n", manifestMagic, m.Version)
	fmt.Fprintf(&b, "generation %d\n", m.Generation)
	fmt.Fprintf(&b, "created %d\n", m.CreatedUnixNano)
	for _, a := range m.Artifacts {
		fmt.Fprintf(&b, "artifact %s %d %08x\n", a.Name, a.Size, a.CRC)
	}
	fmt.Fprintf(&b, "sum %08x\n", crc32.ChecksumIEEE(b.Bytes()))
	return b.Bytes()
}

// ParseManifest parses and verifies a manifest previously written by
// Encode. It is strict: any unknown line, misordered field, duplicate
// artifact, malformed number, or checksum mismatch is an error — a
// manifest that does not parse cleanly marks its generation corrupt.
func ParseManifest(data []byte) (*Manifest, error) {
	sumAt := bytes.LastIndex(data, []byte("\nsum "))
	if sumAt < 0 {
		return nil, fmt.Errorf("store: manifest missing checksum line")
	}
	body := data[:sumAt+1] // includes the newline before "sum"
	sumLine := string(data[sumAt+1:])
	if !strings.HasSuffix(sumLine, "\n") {
		return nil, fmt.Errorf("store: manifest checksum line not newline-terminated")
	}
	sumHex := strings.TrimSuffix(strings.TrimPrefix(sumLine, "sum "), "\n")
	sum, err := parseCRC(sumHex)
	if err != nil {
		return nil, fmt.Errorf("store: manifest checksum: %w", err)
	}
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("store: manifest checksum mismatch: %08x, want %08x", got, sum)
	}

	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	if len(lines) < 3 {
		return nil, fmt.Errorf("store: manifest truncated (%d lines)", len(lines))
	}
	m := &Manifest{}
	magic, vers, ok := strings.Cut(lines[0], " ")
	if !ok || magic != manifestMagic || !strings.HasPrefix(vers, "v") {
		return nil, fmt.Errorf("store: bad manifest header %q", lines[0])
	}
	version, err := parseCanonicalInt(vers[1:])
	if err != nil {
		return nil, fmt.Errorf("store: manifest version: %w", err)
	}
	m.Version = int(version)
	if m.Version < 1 || m.Version > SchemaVersion {
		return nil, fmt.Errorf("store: manifest schema v%d not supported (this build speaks ≤ v%d)", m.Version, SchemaVersion)
	}
	gen, err := parseIntField(lines[1], "generation")
	if err != nil {
		return nil, err
	}
	if gen < 1 || gen > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("store: manifest generation %d out of range", gen)
	}
	m.Generation = int(gen)
	if m.CreatedUnixNano, err = parseIntField(lines[2], "created"); err != nil {
		return nil, err
	}

	seen := map[string]bool{}
	for _, line := range lines[3:] {
		fields := strings.Split(line, " ")
		if len(fields) != 4 || fields[0] != "artifact" {
			return nil, fmt.Errorf("store: bad manifest line %q", line)
		}
		name := fields[1]
		if !validArtifactName(name) {
			return nil, fmt.Errorf("store: bad artifact name %q", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("store: duplicate artifact %q", name)
		}
		seen[name] = true
		size, err := parseCanonicalInt(fields[2])
		if err != nil || size < 0 {
			return nil, fmt.Errorf("store: bad artifact size %q", fields[2])
		}
		crc, err := parseCRC(fields[3])
		if err != nil {
			return nil, fmt.Errorf("store: artifact %q: %w", name, err)
		}
		m.Artifacts = append(m.Artifacts, ArtifactInfo{Name: name, Size: size, CRC: crc})
	}
	return m, nil
}

// parseIntField parses "key N" returning N, insisting on the exact key.
func parseIntField(line, key string) (int64, error) {
	k, v, ok := strings.Cut(line, " ")
	if !ok || k != key {
		return 0, fmt.Errorf("store: manifest line %q, want %q field", line, key)
	}
	n, err := parseCanonicalInt(v)
	if err != nil {
		return 0, fmt.Errorf("store: manifest %s: %w", key, err)
	}
	return n, nil
}

// parseCanonicalInt accepts only the form Encode emits (%d): an
// optional leading '-', no '+', no leading zeros. Manifests are
// machine-written, so any non-canonical number is tampering or
// corruption — and strictness keeps parse∘encode the identity, which
// the fuzz target asserts.
func parseCanonicalInt(s string) (int64, error) {
	digits := strings.TrimPrefix(s, "-")
	if digits == "" || (len(digits) > 1 && digits[0] == '0') {
		return 0, fmt.Errorf("bad number %q", s)
	}
	for _, r := range digits {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("bad number %q", s)
		}
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return n, nil
}

// parseCRC parses exactly eight lowercase hex digits (the form %08x
// emits).
func parseCRC(s string) (uint32, error) {
	if len(s) != 8 {
		return 0, fmt.Errorf("bad crc %q", s)
	}
	var n uint32
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			n = n<<4 | uint32(r-'0')
		case r >= 'a' && r <= 'f':
			n = n<<4 | uint32(r-'a'+10)
		default:
			return 0, fmt.Errorf("bad crc %q", s)
		}
	}
	return n, nil
}
