package store

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"capnn/internal/firing"
	"capnn/internal/nn"
)

// Canonical artifact names used by the CAP'NN binaries. A generation
// carries whichever subset its writer owns: capnn-train commits model
// (+trainmeta while mid-run), capnn-cloud commits model+rates
// (+bmatrices once warmed), capnn-serve commits model+rates+maskcache.
const (
	// ArtifactModel is the trained nn.Network (nn.Save wire format).
	ArtifactModel = "model"
	// ArtifactRates is the firing-rate profile (gob firing.Rates).
	ArtifactRates = "rates"
	// ArtifactMaskCache is the serve tier's mask cache snapshot.
	ArtifactMaskCache = "maskcache"
	// ArtifactBMatrices is variant B's precomputed matrices.
	ArtifactBMatrices = "bmatrices"
	// ArtifactTrainMeta is training progress (TrainMeta), present only
	// in mid-training checkpoints.
	ArtifactTrainMeta = "trainmeta"
	// ArtifactRingConfig is the cluster gateway's ring configuration
	// (RingConfig), committed on every membership change so a restarted
	// gateway resumes routing with the same placement.
	ArtifactRingConfig = "ringconfig"
)

// TrainMeta records how far training had progressed when a checkpoint
// was taken, so capnn-train can resume instead of starting over.
type TrainMeta struct {
	// EpochsDone is the number of fully completed epochs; resume starts
	// at epoch EpochsDone+1.
	EpochsDone int
	// TotalEpochs is the run's configured epoch count, so a resumed run
	// detects a changed -epochs flag.
	TotalEpochs int
	// Seed is the training RNG seed the run was started with.
	Seed int64
}

// PutNetwork stages a network under the given artifact name.
func (t *Txn) PutNetwork(name string, net *nn.Network) error {
	var buf bytes.Buffer
	if err := nn.Save(&buf, net); err != nil {
		return fmt.Errorf("store: encode %q: %w", name, err)
	}
	return t.Put(name, buf.Bytes())
}

// Network loads and decodes a network artifact.
func (g *Generation) Network(name string) (*nn.Network, error) {
	data, err := g.Bytes(name)
	if err != nil {
		return nil, err
	}
	net, err := nn.Load(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("store: decode %q: %w", name, err)
	}
	return net, nil
}

// PutGob stages any gob-encodable value under the given artifact name.
func (t *Txn) PutGob(name string, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("store: encode %q: %w", name, err)
	}
	return t.Put(name, buf.Bytes())
}

// Gob loads an artifact and gob-decodes it into out (a pointer).
func (g *Generation) Gob(name string, out any) error {
	data, err := g.Bytes(name)
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(out); err != nil {
		return fmt.Errorf("store: decode %q: %w", name, err)
	}
	return nil
}

// PutRates stages a firing-rate profile.
func (t *Txn) PutRates(r *firing.Rates) error { return t.PutGob(ArtifactRates, r) }

// Rates loads the firing-rate profile artifact.
func (g *Generation) Rates() (*firing.Rates, error) {
	var r firing.Rates
	if err := g.Gob(ArtifactRates, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// RingConfig is the durable form of a cluster gateway's consistent-hash
// ring: everything needed to rebuild bit-identical placement after a
// restart. Placement is a pure function of (Seed, VirtualNodes, Nodes),
// so persisting these three pins every key to the same serve node
// across gateway restarts — mask caches on the shards stay warm.
type RingConfig struct {
	// Seed salts the ring's hash function.
	Seed int64
	// VirtualNodes is the number of ring points per member.
	VirtualNodes int
	// Replication is how many distinct owners each key has.
	Replication int
	// Version is the ring version at commit time; a restarted gateway
	// resumes numbering from here so version comparisons against
	// long-lived peers stay monotonic.
	Version uint64
	// Nodes are the member serve-node addresses.
	Nodes []string
}

// PutRingConfig stages the gateway ring configuration.
func (t *Txn) PutRingConfig(rc RingConfig) error { return t.PutGob(ArtifactRingConfig, rc) }

// RingConfig loads the gateway ring configuration artifact.
func (g *Generation) RingConfig() (RingConfig, error) {
	var rc RingConfig
	err := g.Gob(ArtifactRingConfig, &rc)
	return rc, err
}

// PutTrainMeta stages training progress metadata.
func (t *Txn) PutTrainMeta(m TrainMeta) error { return t.PutGob(ArtifactTrainMeta, m) }

// TrainMeta loads the training progress artifact.
func (g *Generation) TrainMeta() (TrainMeta, error) {
	var m TrainMeta
	err := g.Gob(ArtifactTrainMeta, &m)
	return m, err
}
