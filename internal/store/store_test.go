package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"capnn/internal/nn"
)

func testNet(t *testing.T, seed int64) *nn.Network {
	t.Helper()
	net, err := nn.NewBuilder(1, 6, 6, seed).
		Conv(3).ReLU().Flatten().Dense(4).Build()
	if err != nil {
		t.Fatalf("build net: %v", err)
	}
	return net
}

func netBytes(t *testing.T, net *nn.Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := nn.Save(&buf, net); err != nil {
		t.Fatalf("save: %v", err)
	}
	return buf.Bytes()
}

// commitGen commits one generation holding the given artifacts.
func commitGen(t *testing.T, s *Store, artifacts map[string][]byte) int {
	t.Helper()
	txn, err := s.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	for name, data := range artifacts {
		if err := txn.Put(name, data); err != nil {
			t.Fatalf("put %q: %v", name, err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	return txn.Generation()
}

func TestCommitAndReload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	net := testNet(t, 1)
	want := netBytes(t, net)
	gen := commitGen(t, s, map[string][]byte{ArtifactModel: want, ArtifactRates: []byte("rates-blob")})

	// Reload through a fresh handle, as a restarted process would.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g, err := s2.Latest()
	if err != nil {
		t.Fatalf("latest: %v", err)
	}
	if g.Number != gen {
		t.Fatalf("latest generation %d, want %d", g.Number, gen)
	}
	got, err := g.Bytes(ArtifactModel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("model bytes differ after reload")
	}
	if _, err := g.Network(ArtifactModel); err != nil {
		t.Fatalf("decode model: %v", err)
	}
	if g.Created().IsZero() {
		t.Fatal("zero created time")
	}
}

func TestEmptyStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Latest(); !errors.Is(err, ErrNoGeneration) {
		t.Fatalf("latest on empty store: %v, want ErrNoGeneration", err)
	}
}

// Corrupting or truncating any artifact — or the manifest itself —
// must roll back to the previous generation bit-identically.
func TestCorruptionRollsBack(t *testing.T) {
	goodArtifacts := map[string][]byte{
		ArtifactModel: netBytes(t, testNet(t, 7)),
		ArtifactRates: []byte("generation-one-rates"),
	}
	cases := []struct {
		name    string
		corrupt func(t *testing.T, genDir string)
	}{
		{"flip-bit-model", flipByte(ArtifactModel)},
		{"flip-bit-rates", flipByte(ArtifactRates)},
		{"truncate-model", truncateFile(ArtifactModel)},
		{"truncate-rates", truncateFile(ArtifactRates)},
		{"truncate-manifest", truncateFile("MANIFEST")},
		{"flip-bit-manifest", flipByte("MANIFEST")},
		{"delete-artifact", func(t *testing.T, genDir string) {
			if err := os.Remove(filepath.Join(genDir, ArtifactModel)); err != nil {
				t.Fatal(err)
			}
		}},
		{"delete-manifest", func(t *testing.T, genDir string) {
			if err := os.Remove(filepath.Join(genDir, "MANIFEST")); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			gen1 := commitGen(t, s, goodArtifacts)
			gen2 := commitGen(t, s, map[string][]byte{
				ArtifactModel: netBytes(t, testNet(t, 8)),
				ArtifactRates: []byte("generation-two-rates"),
			})
			tc.corrupt(t, filepath.Join(dir, genDirName(gen2)))

			s2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			g, err := s2.Latest()
			if err != nil {
				t.Fatalf("latest after corruption: %v", err)
			}
			if g.Number != gen1 {
				t.Fatalf("rolled back to generation %d, want %d", g.Number, gen1)
			}
			for name, want := range goodArtifacts {
				got, err := g.Bytes(name)
				if err != nil {
					t.Fatalf("read %q: %v", name, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("artifact %q not bit-identical after rollback", name)
				}
			}
			st := s2.Stats()
			if st.CorruptGenerations != 1 || st.Rollbacks != 1 {
				t.Fatalf("stats = %+v, want 1 corrupt / 1 rollback", st)
			}
			// The bad generation is quarantined, not reusable: a new commit
			// gets a fresh number and the corrupt dir survives.
			if _, err := os.Stat(filepath.Join(dir, corruptPrefix+genDirName(gen2))); err != nil {
				t.Fatalf("corrupt generation not quarantined: %v", err)
			}
			gen3 := commitGen(t, s2, goodArtifacts)
			if gen3 <= gen2 {
				t.Fatalf("new generation %d reuses quarantined number %d", gen3, gen2)
			}
		})
	}
}

func flipByte(name string) func(t *testing.T, genDir string) {
	return func(t *testing.T, genDir string) {
		t.Helper()
		path := filepath.Join(genDir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func truncateFile(name string) func(t *testing.T, genDir string) {
	return func(t *testing.T, genDir string) {
		t.Helper()
		path := filepath.Join(genDir, name)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, info.Size()/2); err != nil {
			t.Fatal(err)
		}
	}
}

// A crash mid-commit leaves only a tmp- directory; Open sweeps it and
// the previous generation still serves.
func TestCrashMidCommitSweepsTmp(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	gen1 := commitGen(t, s, map[string][]byte{ArtifactModel: []byte("v1")})

	// Simulate the crash: stage artifacts but never commit.
	txn, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Put(ArtifactModel, []byte("half-written")); err != nil {
		t.Fatal(err)
	}
	// Process dies here — txn neither committed nor aborted.

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Stats().TmpSwept != 1 {
		t.Fatalf("TmpSwept = %d, want 1", s2.Stats().TmpSwept)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("tmp dir %q survived Open", e.Name())
		}
	}
	g, err := s2.Latest()
	if err != nil || g.Number != gen1 {
		t.Fatalf("latest = %v, %v; want generation %d", g, err, gen1)
	}
}

func TestRetention(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenKeep(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	var last int
	for i := 0; i < 5; i++ {
		last = commitGen(t, s, map[string][]byte{ArtifactModel: []byte{byte(i)}})
	}
	gens := s.listGens()
	if len(gens) != 2 || gens[1] != last || gens[0] != last-1 {
		t.Fatalf("retained generations %v, want [%d %d]", gens, last-1, last)
	}
}

func TestTxnValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	txn, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Abort()
	for _, bad := range []string{"", "MANIFEST", "..", "a/b", "sp ace", "é"} {
		if err := txn.Put(bad, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted", bad)
		}
	}
	if err := txn.Put(ArtifactModel, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Put(ArtifactModel, []byte("y")); err == nil {
		t.Fatal("duplicate Put accepted")
	}

	// Empty commit is rejected.
	txn2, _ := s.Begin()
	if err := txn2.Commit(); err == nil {
		t.Fatal("empty commit accepted")
	}
}

func TestGobArtifactsRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := s.Begin()
	meta := TrainMeta{EpochsDone: 3, TotalEpochs: 10, Seed: 42}
	if err := txn.PutTrainMeta(meta); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	g, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.TrainMeta()
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("TrainMeta = %+v, want %+v", got, meta)
	}
	if g.Has(ArtifactModel) {
		t.Fatal("Has reports absent artifact")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Version:         SchemaVersion,
		Generation:      12,
		CreatedUnixNano: 1722945600000000000,
		Artifacts: []ArtifactInfo{
			{Name: "model", Size: 9999, CRC: 0x12ab34cd},
			{Name: "rates", Size: 0, CRC: 0},
		},
	}
	enc := m.Encode()
	got, err := ParseManifest(enc)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, enc)
	}
	if got.Generation != m.Generation || got.CreatedUnixNano != m.CreatedUnixNano ||
		len(got.Artifacts) != 2 || got.Artifacts[0] != m.Artifacts[0] || got.Artifacts[1] != m.Artifacts[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestManifestRejectsTampering(t *testing.T) {
	m := &Manifest{Version: SchemaVersion, Generation: 1, CreatedUnixNano: 1,
		Artifacts: []ArtifactInfo{{Name: "model", Size: 10, CRC: 0xdeadbeef}}}
	enc := m.Encode()

	cases := map[string][]byte{
		"empty":          nil,
		"no-sum":         []byte("capnn-store-manifest v1\ngeneration 1\ncreated 1\n"),
		"flipped":        append(append([]byte{}, enc[:10]...), append([]byte{enc[10] ^ 1}, enc[11:]...)...),
		"truncated":      enc[:len(enc)-3],
		"future-version": (&Manifest{Version: SchemaVersion + 1, Generation: 1, CreatedUnixNano: 1, Artifacts: []ArtifactInfo{{Name: "x", Size: 1, CRC: 1}}}).Encode(),
	}
	for name, data := range cases {
		if _, err := ParseManifest(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// A manifest copied from another generation directory is rejected
// because its embedded generation number no longer matches.
func TestManifestGenerationMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	gen1 := commitGen(t, s, map[string][]byte{ArtifactModel: []byte("one")})
	gen2 := commitGen(t, s, map[string][]byte{ArtifactModel: []byte("one")})
	src := filepath.Join(dir, genDirName(gen1), manifestName)
	dst := filepath.Join(dir, genDirName(gen2), manifestName)
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := s.Latest()
	if err != nil || g.Number != gen1 {
		t.Fatalf("latest = %v, %v; want rollback to %d", g, err, gen1)
	}
}
