package firing

import "fmt"

// Quantized is a firing-rate matrix compressed with linear b-bit
// quantization (paper §V-C stores 3-bit rates in the cloud).
type Quantized struct {
	Stage   int
	Units   int
	Classes int
	Bits    int
	Codes   []uint8 // one code per (unit, class), values in [0, 2^Bits)
}

// Quantize compresses a rate matrix to bits-bit codes. bits must be in
// [1,8]. Rates are clamped to [0,1] before coding.
func Quantize(lr *LayerRates, bits int) (*Quantized, error) {
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("firing: quantize bits %d outside [1,8]", bits)
	}
	levels := float64(int(1)<<bits - 1)
	q := &Quantized{Stage: lr.Stage, Units: lr.Units, Classes: lr.Classes, Bits: bits, Codes: make([]uint8, len(lr.F))}
	for i, v := range lr.F {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		q.Codes[i] = uint8(v*levels + 0.5)
	}
	return q, nil
}

// Dequantize reconstructs an approximate rate matrix.
func (q *Quantized) Dequantize() *LayerRates {
	levels := float64(int(1)<<q.Bits - 1)
	lr := &LayerRates{Stage: q.Stage, Units: q.Units, Classes: q.Classes, F: make([]float64, len(q.Codes))}
	for i, c := range q.Codes {
		lr.F[i] = float64(c) / levels
	}
	return lr
}

// PackedBytes is the storage the quantized matrix needs with dense bit
// packing: ceil(entries × bits / 8).
func (q *Quantized) PackedBytes() int {
	bits := len(q.Codes) * q.Bits
	return (bits + 7) / 8
}

// Overhead reports the cloud-side memory overhead of storing firing
// rates, the paper's §V-C accounting.
type Overhead struct {
	// RateBytes is the packed storage for all rate matrices.
	RateBytes int
	// ModelBytes is the unpruned model's weight storage at 16-bit
	// precision, the paper's reference point.
	ModelBytes int
	// Ratio is RateBytes / ModelBytes.
	Ratio float64
}

// MemoryOverhead computes the §V-C overhead of storing the given rates at
// the given bit width against a model with paramCount 16-bit parameters.
func MemoryOverhead(r *Rates, bits int, paramCount int) (Overhead, error) {
	total := 0
	for _, lr := range r.Layers {
		q, err := Quantize(lr, bits)
		if err != nil {
			return Overhead{}, err
		}
		total += q.PackedBytes()
	}
	model := paramCount * 2
	ov := Overhead{RateBytes: total, ModelBytes: model}
	if model > 0 {
		ov.Ratio = float64(total) / float64(model)
	}
	return ov, nil
}
