package firing

import (
	"bytes"
	"testing"
)

// FuzzLoadPacked exercises the packed-rates decoder with arbitrary bytes:
// errors are fine, panics are not, and any successfully decoded payload
// must unpack without panicking.
func FuzzLoadPacked(f *testing.F) {
	r := &Rates{Classes: 3, Layers: map[int]*LayerRates{
		0: {Stage: 0, Units: 4, Classes: 3, F: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1, 0, 0.25}},
	}}
	p, err := Pack(r, 3)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("P5 nonsense"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := LoadPacked(bytes.NewReader(data))
		if err != nil {
			return
		}
		if u, err := p.Unpack(); err == nil {
			for _, lr := range u.Layers {
				for _, v := range lr.F {
					if v < 0 || v > 1 {
						t.Fatalf("unpacked rate %v outside [0,1]", v)
					}
				}
			}
		}
	})
}
