package firing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capnn/internal/data"
	"capnn/internal/nn"
)

func smallNetAndData(t *testing.T) (*nn.Network, *data.Dataset) {
	t.Helper()
	gen, err := data.NewGenerator(data.SynthConfig{Classes: 3, Groups: 1, H: 8, W: 8, NoiseStd: 0.3, MaxShift: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Generate(6, 1)
	net := nn.NewBuilder(1, 8, 8, 4).
		Conv(4).ReLU().Pool().
		Flatten().Dense(6).ReLU().Dense(3).MustBuild()
	return net, ds
}

func TestComputeRatesInRange(t *testing.T) {
	net, ds := smallNetAndData(t)
	rates, err := Compute(net, ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rates.Layers) != 2 {
		t.Fatalf("got %d layers, want 2", len(rates.Layers))
	}
	for si, lr := range rates.Layers {
		if lr.Stage != si {
			t.Fatalf("stage mismatch %d vs %d", lr.Stage, si)
		}
		for _, v := range lr.F {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("rate %v outside [0,1]", v)
			}
		}
	}
}

func TestComputeRejectsBadStage(t *testing.T) {
	net, ds := smallNetAndData(t)
	if _, err := Compute(net, ds, []int{99}); err == nil {
		t.Fatal("bad stage accepted")
	}
	// Output stage (no ReLU) must be rejected.
	if _, err := Compute(net, ds, []int{2}); err == nil {
		t.Fatal("output stage accepted")
	}
}

func TestComputeRemovesHooks(t *testing.T) {
	net, ds := smallNetAndData(t)
	if _, err := Compute(net, ds, []int{0}); err != nil {
		t.Fatal(err)
	}
	for _, st := range net.Stages() {
		if st.Act != nil && st.Act.Hook != nil {
			t.Fatal("profiling left a hook installed")
		}
	}
}

func TestRatesDeterministic(t *testing.T) {
	net, ds := smallNetAndData(t)
	a, _ := Compute(net, ds, []int{0, 1})
	b, _ := Compute(net, ds, []int{0, 1})
	for si := range a.Layers {
		for i, v := range a.Layers[si].F {
			if b.Layers[si].F[i] != v {
				t.Fatal("profiling not deterministic")
			}
		}
	}
}

func TestPrunedUnitNeverFires(t *testing.T) {
	net, ds := smallNetAndData(t)
	net.SetPruning(map[int][]bool{0: {true, false, false, false}})
	rates, err := Compute(net, ds, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	lr := rates.Layers[0]
	for c := 0; c < lr.Classes; c++ {
		if lr.At(0, c) != 0 {
			t.Fatal("pruned channel shows nonzero firing rate")
		}
	}
}

func TestRatesCloneIsDeep(t *testing.T) {
	net, ds := smallNetAndData(t)
	rates, _ := Compute(net, ds, []int{0})
	c := rates.Clone()
	c.Layers[0].Set(0, 0, 0.123456)
	if rates.Layers[0].At(0, 0) == 0.123456 {
		t.Fatal("Clone shares storage")
	}
}

func TestPrunableStagesVGG(t *testing.T) {
	net, err := nn.BuildVGG(nn.DefaultVGGConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	ps := PrunableStages(net)
	want := []int{10, 11, 12, 13, 14}
	if len(ps) != len(want) {
		t.Fatalf("prunable stages %v, want %v", ps, want)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("prunable stages %v, want %v", ps, want)
		}
	}
}

func TestPrunableStagesTinyNet(t *testing.T) {
	net := nn.NewBuilder(1, 8, 8, 1).Conv(2).ReLU().Pool().Flatten().Dense(3).MustBuild()
	ps := PrunableStages(net)
	// 2 unit layers → only the first (conv) is prunable.
	if len(ps) != 1 || ps[0] != 0 {
		t.Fatalf("prunable stages %v, want [0]", ps)
	}
}

func TestQuantizeRoundTripWithinOneBin(t *testing.T) {
	lr := &LayerRates{Stage: 0, Units: 4, Classes: 3, F: []float64{
		0, 0.1, 0.2, 0.33, 0.4, 0.5, 0.66, 0.7, 0.85, 0.9, 0.99, 1,
	}}
	q, err := Quantize(lr, 3)
	if err != nil {
		t.Fatal(err)
	}
	dq := q.Dequantize()
	halfBin := 0.5 / 7.0
	for i, v := range lr.F {
		if math.Abs(dq.F[i]-v) > halfBin+1e-12 {
			t.Fatalf("entry %d: %v → %v, beyond half a bin", i, v, dq.F[i])
		}
	}
}

func TestQuantizeClampsAndValidates(t *testing.T) {
	lr := &LayerRates{Units: 1, Classes: 2, F: []float64{-0.5, 1.5}}
	q, err := Quantize(lr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q.Codes[0] != 0 || q.Codes[1] != 7 {
		t.Fatalf("clamping failed: %v", q.Codes)
	}
	if _, err := Quantize(lr, 0); err == nil {
		t.Fatal("bits=0 accepted")
	}
	if _, err := Quantize(lr, 9); err == nil {
		t.Fatal("bits=9 accepted")
	}
}

// Property: quantization error is bounded by half a bin for any rate in
// [0,1] and any bit width.
func TestQuantizeErrorBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 1 + rng.Intn(8)
		n := 1 + rng.Intn(20)
		lr := &LayerRates{Units: n, Classes: 1, F: make([]float64, n)}
		for i := range lr.F {
			lr.F[i] = rng.Float64()
		}
		q, err := Quantize(lr, bits)
		if err != nil {
			return false
		}
		dq := q.Dequantize()
		halfBin := 0.5 / float64(int(1)<<bits-1)
		for i := range lr.F {
			if math.Abs(dq.F[i]-lr.F[i]) > halfBin+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPackedBytes(t *testing.T) {
	q := &Quantized{Bits: 3, Codes: make([]uint8, 1000)}
	// 3000 bits → 375 bytes.
	if q.PackedBytes() != 375 {
		t.Fatalf("PackedBytes = %d, want 375", q.PackedBytes())
	}
}

func TestMemoryOverheadAccounting(t *testing.T) {
	r := &Rates{Classes: 10, Layers: map[int]*LayerRates{
		0: {Units: 8, Classes: 10, F: make([]float64, 80)},
		1: {Units: 4, Classes: 10, F: make([]float64, 40)},
	}}
	ov, err := MemoryOverhead(r, 3, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// (80+40) entries × 3 bits = 360 bits = 45 bytes; model = 20000 bytes.
	if ov.RateBytes != 45 || ov.ModelBytes != 20000 {
		t.Fatalf("overhead = %+v", ov)
	}
	if math.Abs(ov.Ratio-45.0/20000.0) > 1e-12 {
		t.Fatalf("ratio = %v", ov.Ratio)
	}
}

// Paper §V-C check at full VGG-16 scale: 3 conv layers × 512 channels +
// 2 FC × 4096 neurons, 1000 classes, 3-bit codes ≈ 3.6 MB ≈ 1.3% of the
// 276 MB 16-bit model.
func TestMemoryOverheadPaperScale(t *testing.T) {
	mk := func(units int) *LayerRates {
		return &LayerRates{Units: units, Classes: 1000, F: make([]float64, units*1000)}
	}
	r := &Rates{Classes: 1000, Layers: map[int]*LayerRates{
		0: mk(512), 1: mk(512), 2: mk(512), 3: mk(4096), 4: mk(4096),
	}}
	const vgg16Params = 138_344_128 // weights+biases of standard VGG-16
	ov, err := MemoryOverhead(r, 3, vgg16Params)
	if err != nil {
		t.Fatal(err)
	}
	mb := float64(ov.RateBytes) / (1 << 20)
	if mb < 3.0 || mb > 4.2 {
		t.Fatalf("rate storage %.2f MB, paper reports ≈3.6 MB", mb)
	}
	if ov.Ratio < 0.010 || ov.Ratio > 0.016 {
		t.Fatalf("overhead ratio %.4f, paper reports ≈1.3%%", ov.Ratio)
	}
}
