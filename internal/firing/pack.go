package firing

import (
	"encoding/gob"
	"fmt"
	"io"
)

// PackedRates is the cloud storage format of §V-C: every rate matrix
// linearly quantized and bit-packed. This is what the paper's 3.6 MB /
// 1.3% overhead figure measures, so the codec packs densely rather than
// byte-aligning each code.
type PackedRates struct {
	Classes int
	Bits    int
	Layers  []PackedLayer
}

// PackedLayer is one stage's bit-packed matrix.
type PackedLayer struct {
	Stage   int
	Units   int
	Classes int
	// Data holds Units×Classes codes of Bits bits each, LSB-first.
	Data []byte
}

// Pack quantizes and bit-packs every layer of r.
func Pack(r *Rates, bits int) (*PackedRates, error) {
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("firing: pack bits %d outside [1,8]", bits)
	}
	p := &PackedRates{Classes: r.Classes, Bits: bits}
	for _, lr := range sortedLayers(r) {
		q, err := Quantize(lr, bits)
		if err != nil {
			return nil, err
		}
		pl := PackedLayer{Stage: lr.Stage, Units: lr.Units, Classes: lr.Classes,
			Data: make([]byte, (len(q.Codes)*bits+7)/8)}
		for i, code := range q.Codes {
			writeBits(pl.Data, i*bits, bits, code)
		}
		p.Layers = append(p.Layers, pl)
	}
	return p, nil
}

// Unpack reconstructs (dequantized) rate matrices.
func (p *PackedRates) Unpack() (*Rates, error) {
	if p.Bits < 1 || p.Bits > 8 {
		return nil, fmt.Errorf("firing: unpack bits %d outside [1,8]", p.Bits)
	}
	levels := float64(int(1)<<p.Bits - 1)
	r := &Rates{Classes: p.Classes, Layers: map[int]*LayerRates{}}
	for _, pl := range p.Layers {
		n := pl.Units * pl.Classes
		if need := (n*p.Bits + 7) / 8; len(pl.Data) < need {
			return nil, fmt.Errorf("firing: stage %d packed data %d bytes, need %d", pl.Stage, len(pl.Data), need)
		}
		lr := &LayerRates{Stage: pl.Stage, Units: pl.Units, Classes: pl.Classes, F: make([]float64, n)}
		for i := 0; i < n; i++ {
			lr.F[i] = float64(readBits(pl.Data, i*p.Bits, p.Bits)) / levels
		}
		r.Layers[pl.Stage] = lr
	}
	return r, nil
}

// TotalBytes is the packed payload size over all layers.
func (p *PackedRates) TotalBytes() int {
	n := 0
	for _, pl := range p.Layers {
		n += len(pl.Data)
	}
	return n
}

// writeBits stores the low `bits` bits of code at bit offset off,
// LSB-first within each byte.
func writeBits(dst []byte, off, bits int, code uint8) {
	for b := 0; b < bits; b++ {
		if code&(1<<b) != 0 {
			dst[(off+b)/8] |= 1 << uint((off+b)%8)
		}
	}
}

// readBits extracts `bits` bits at bit offset off.
func readBits(src []byte, off, bits int) uint8 {
	var v uint8
	for b := 0; b < bits; b++ {
		if src[(off+b)/8]&(1<<uint((off+b)%8)) != 0 {
			v |= 1 << b
		}
	}
	return v
}

func sortedLayers(r *Rates) []*LayerRates {
	var stages []int
	for s := range r.Layers {
		stages = append(stages, s)
	}
	for i := 1; i < len(stages); i++ { // insertion sort: tiny n
		for j := i; j > 0 && stages[j] < stages[j-1]; j-- {
			stages[j], stages[j-1] = stages[j-1], stages[j]
		}
	}
	out := make([]*LayerRates, 0, len(stages))
	for _, s := range stages {
		out = append(out, r.Layers[s])
	}
	return out
}

// Save writes the packed rates with gob framing (the on-disk / wire
// format the cloud keeps next to the model).
func (p *PackedRates) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(p)
}

// LoadPacked reads packed rates written by Save.
func LoadPacked(r io.Reader) (*PackedRates, error) {
	var p PackedRates
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, err
	}
	return &p, nil
}
