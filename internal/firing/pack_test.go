package firing

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomRates(rng *rand.Rand, stages []int, units, classes int) *Rates {
	r := &Rates{Classes: classes, Layers: map[int]*LayerRates{}}
	for _, s := range stages {
		lr := &LayerRates{Stage: s, Units: units, Classes: classes, F: make([]float64, units*classes)}
		for i := range lr.F {
			lr.F[i] = rng.Float64()
		}
		r.Layers[s] = lr
	}
	return r
}

func TestPackUnpackWithinOneBin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := randomRates(rng, []int{3, 1, 2}, 7, 5)
	p, err := Pack(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	u, err := p.Unpack()
	if err != nil {
		t.Fatal(err)
	}
	halfBin := 0.5 / 7.0
	for s, lr := range r.Layers {
		ul := u.Layers[s]
		if ul == nil {
			t.Fatalf("stage %d missing after unpack", s)
		}
		for i, v := range lr.F {
			if math.Abs(ul.F[i]-v) > halfBin+1e-12 {
				t.Fatalf("stage %d entry %d: %v → %v", s, i, v, ul.F[i])
			}
		}
	}
}

func TestPackedBytesAreDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := randomRates(rng, []int{0}, 100, 10)
	p, err := Pack(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 codes × 3 bits = 375 bytes, not 1000.
	if p.TotalBytes() != 375 {
		t.Fatalf("TotalBytes = %d, want 375", p.TotalBytes())
	}
}

func TestPackValidatesBits(t *testing.T) {
	r := &Rates{Classes: 1, Layers: map[int]*LayerRates{0: {Units: 1, Classes: 1, F: []float64{0.5}}}}
	if _, err := Pack(r, 0); err == nil {
		t.Fatal("bits=0 accepted")
	}
	if _, err := Pack(r, 9); err == nil {
		t.Fatal("bits=9 accepted")
	}
}

func TestUnpackRejectsTruncatedData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := randomRates(rng, []int{0}, 8, 4)
	p, _ := Pack(r, 3)
	p.Layers[0].Data = p.Layers[0].Data[:2]
	if _, err := p.Unpack(); err == nil {
		t.Fatal("truncated payload accepted")
	}
	p2, _ := Pack(r, 3)
	p2.Bits = 0
	if _, err := p2.Unpack(); err == nil {
		t.Fatal("bits=0 unpack accepted")
	}
}

func TestPackedSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := randomRates(rng, []int{10, 11}, 6, 3)
	p, err := Pack(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPacked(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalBytes() != p.TotalBytes() || loaded.Bits != 3 {
		t.Fatal("load changed payload")
	}
	u1, _ := p.Unpack()
	u2, _ := loaded.Unpack()
	for s := range u1.Layers {
		for i, v := range u1.Layers[s].F {
			if u2.Layers[s].F[i] != v {
				t.Fatal("loaded rates differ")
			}
		}
	}
	if _, err := LoadPacked(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// Property: write/read bit round trip for arbitrary codes and widths.
func TestBitCodecProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 1 + rng.Intn(8)
		n := 1 + rng.Intn(64)
		codes := make([]uint8, n)
		max := uint8(int(1)<<bits - 1)
		for i := range codes {
			codes[i] = uint8(rng.Intn(int(max) + 1))
		}
		buf := make([]byte, (n*bits+7)/8)
		for i, c := range codes {
			writeBits(buf, i*bits, bits, c)
		}
		for i, c := range codes {
			if readBits(buf, i*bits, bits) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Pruning with unpacked (3-bit) rates stays within half a bin of the
// full-precision effective rates, so downstream threshold decisions are
// stable — the property the paper relies on to claim 3 bits suffice.
func TestPackPreservesOrderingApproximately(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := randomRates(rng, []int{0}, 50, 4)
	p, _ := Pack(r, 3)
	u, _ := p.Unpack()
	orig, dq := r.Layers[0], u.Layers[0]
	inversions := 0
	for a := 0; a < 50; a++ {
		for b := a + 1; b < 50; b++ {
			va, vb := orig.At(a, 0), orig.At(b, 0)
			da, db := dq.At(a, 0), dq.At(b, 0)
			if math.Abs(va-vb) > 2.0/7.0 && (va-vb)*(da-db) < 0 {
				inversions++
			}
		}
	}
	if inversions != 0 {
		t.Fatalf("%d large-gap orderings inverted by 3-bit quantization", inversions)
	}
}
