// Package firing computes the class-specific firing rates at the heart of
// CAP'NN (paper §II–III): for every prunable unit (dense neuron or conv
// channel) and every output class, the fraction of that class's profiling
// inputs for which the unit fires (post-ReLU activation > 0). For conv
// channels the rate is the mean non-zero fraction over the feature map,
// i.e. 1 − APoZ of Hu et al. [6]. The package also provides the 3-bit
// linear quantization and memory-overhead accounting of paper §V-C.
package firing

import (
	"fmt"

	"capnn/internal/data"
	"capnn/internal/nn"
	"capnn/internal/parallel"
	"capnn/internal/tensor"
)

// LayerRates holds the firing-rate matrix F_ℓ of one unit layer:
// Units × Classes, row-major.
type LayerRates struct {
	// Stage is the unit-layer index within Network.Stages().
	Stage int
	// Units is the number of prunable units in the layer.
	Units int
	// Classes is the number of output classes.
	Classes int
	// F holds Units×Classes rates in [0,1], row-major by unit.
	F []float64
}

// At returns F(n, c).
func (lr *LayerRates) At(n, c int) float64 { return lr.F[n*lr.Classes+c] }

// Set stores F(n, c) = v.
func (lr *LayerRates) Set(n, c int, v float64) { lr.F[n*lr.Classes+c] = v }

// Clone deep-copies the matrix.
func (lr *LayerRates) Clone() *LayerRates {
	c := *lr
	c.F = append([]float64(nil), lr.F...)
	return &c
}

// Rates is the collection of firing-rate matrices for a network's
// profiled stages, stored in the cloud alongside the model (paper §II).
type Rates struct {
	Classes int
	// Layers maps stage index → matrix for every profiled stage.
	Layers map[int]*LayerRates
}

// Clone deep-copies all matrices (CAP'NN-M mutates a copy).
func (r *Rates) Clone() *Rates {
	c := &Rates{Classes: r.Classes, Layers: make(map[int]*LayerRates, len(r.Layers))}
	for k, v := range r.Layers {
		c.Layers[k] = v.Clone()
	}
	return c
}

// profileBatch is the forward batch size used while profiling. Shard
// boundaries derive from it, so it also fixes the parallel decomposition.
const profileBatch = 32

// Compute profiles the network over ds and returns the firing-rate
// matrices for the given stage indices, using parallel.Default() workers.
// The dataset should contain an equal number of samples per class (paper
// §III); classes with zero samples yield zero rates. The network's
// current prune masks are respected (masked units simply never fire),
// but profiling is normally done on the unpruned model.
func Compute(net *nn.Network, ds *data.Dataset, stageIdx []int) (*Rates, error) {
	return ComputeWorkers(net, ds, stageIdx, 0)
}

// ComputeWorkers is Compute with an explicit worker count (<= 0 means
// parallel.Default()). The dataset is split into fixed profileBatch
// shards; each shard counts integer firing events into its own partial
// matrices via the stateless Network.InferObserved, and partials are
// merged in shard order. Firing counts are integers, so the merged
// totals — and hence the rates — are bit-identical for every worker
// count.
func ComputeWorkers(net *nn.Network, ds *data.Dataset, stageIdx []int, workers int) (*Rates, error) {
	stages := net.Stages()
	// stagePos maps profiled stage index → position in the accumulator
	// arrays; unitSize is the per-unit feature-map size (1 for dense).
	stagePos := make(map[int]int, len(stageIdx))
	unitSizes := make([]int, len(stageIdx))
	units := make([]int, len(stageIdx))
	for i, si := range stageIdx {
		if si < 0 || si >= len(stages) {
			return nil, fmt.Errorf("firing: stage %d outside [0,%d)", si, len(stages))
		}
		st := stages[si]
		if st.Act == nil {
			return nil, fmt.Errorf("firing: stage %d (%s) has no ReLU to observe", si, st.Unit.Name())
		}
		stagePos[si] = i
		units[i] = st.Unit.Units()
		unitSizes[i] = 1
		if outShape := st.Unit.OutShape(); len(outShape) == 3 {
			unitSizes[i] = outShape[1] * outShape[2]
		}
	}

	masks := net.Masks()
	shards := parallel.Shards(ds.Len(), profileBatch)

	// One partial result per shard: integer firing counts per profiled
	// stage (units × classes) plus the shard's class census.
	type partial struct {
		fired    [][]int64
		perClass []int
	}
	parts := make([]partial, len(shards))
	parallel.For(workers, len(shards), func(i int) {
		sh := shards[i]
		idx := make([]int, sh.Len())
		for j := range idx {
			idx[j] = sh.Lo + j
		}
		x, labels := ds.Batch(idx)
		p := partial{fired: make([][]int64, len(stageIdx)), perClass: make([]int, ds.Classes)}
		for j := range p.fired {
			p.fired[j] = make([]int64, units[j]*ds.Classes)
		}
		net.InferObserved(x, masks, func(stage int, post *tensor.Tensor) {
			pos, ok := stagePos[stage]
			if !ok {
				return
			}
			u, usz := units[pos], unitSizes[pos]
			d := post.Data()
			for s := 0; s < post.Dim(0); s++ {
				class := labels[s]
				base := s * u * usz
				for un := 0; un < u; un++ {
					fired := int64(0)
					for _, v := range d[base+un*usz : base+(un+1)*usz] {
						if v > 0 {
							fired++
						}
					}
					p.fired[pos][un*ds.Classes+class] += fired
				}
			}
		})
		for _, l := range labels {
			p.perClass[l]++
		}
		parts[i] = p
	})

	// Merge in shard order. Integer addition is exactly associative, so
	// this is belt and braces — any order would yield the same totals.
	perClass := make([]int, ds.Classes)
	totals := make([][]int64, len(stageIdx))
	for i := range totals {
		totals[i] = make([]int64, units[i]*ds.Classes)
	}
	for _, p := range parts {
		for c, n := range p.perClass {
			perClass[c] += n
		}
		for i := range totals {
			for k, v := range p.fired[i] {
				totals[i][k] += v
			}
		}
	}

	res := &Rates{Classes: ds.Classes, Layers: make(map[int]*LayerRates, len(stageIdx))}
	for i, si := range stageIdx {
		lr := &LayerRates{Stage: si, Units: units[i], Classes: ds.Classes, F: make([]float64, units[i]*ds.Classes)}
		for u := 0; u < units[i]; u++ {
			for c := 0; c < ds.Classes; c++ {
				if perClass[c] > 0 {
					lr.F[u*ds.Classes+c] = float64(totals[i][u*ds.Classes+c]) / (float64(unitSizes[i]) * float64(perClass[c]))
				}
			}
		}
		res.Layers[si] = lr
	}
	return res, nil
}

// PrunableStages returns the paper's prunable layer set for a network:
// the last 6 unit layers minus the output layer (which is never pruned),
// i.e. 5 stage indices. For VGG-16 these are conv11–13, FC1 and FC2.
func PrunableStages(net *nn.Network) []int {
	n := len(net.Stages())
	start := n - 6
	if start < 0 {
		start = 0
	}
	var out []int
	for i := start; i < n-1; i++ {
		out = append(out, i)
	}
	return out
}
