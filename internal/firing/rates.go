// Package firing computes the class-specific firing rates at the heart of
// CAP'NN (paper §II–III): for every prunable unit (dense neuron or conv
// channel) and every output class, the fraction of that class's profiling
// inputs for which the unit fires (post-ReLU activation > 0). For conv
// channels the rate is the mean non-zero fraction over the feature map,
// i.e. 1 − APoZ of Hu et al. [6]. The package also provides the 3-bit
// linear quantization and memory-overhead accounting of paper §V-C.
package firing

import (
	"fmt"

	"capnn/internal/data"
	"capnn/internal/nn"
	"capnn/internal/tensor"
)

// LayerRates holds the firing-rate matrix F_ℓ of one unit layer:
// Units × Classes, row-major.
type LayerRates struct {
	// Stage is the unit-layer index within Network.Stages().
	Stage int
	// Units is the number of prunable units in the layer.
	Units int
	// Classes is the number of output classes.
	Classes int
	// F holds Units×Classes rates in [0,1], row-major by unit.
	F []float64
}

// At returns F(n, c).
func (lr *LayerRates) At(n, c int) float64 { return lr.F[n*lr.Classes+c] }

// Set stores F(n, c) = v.
func (lr *LayerRates) Set(n, c int, v float64) { lr.F[n*lr.Classes+c] = v }

// Clone deep-copies the matrix.
func (lr *LayerRates) Clone() *LayerRates {
	c := *lr
	c.F = append([]float64(nil), lr.F...)
	return &c
}

// Rates is the collection of firing-rate matrices for a network's
// profiled stages, stored in the cloud alongside the model (paper §II).
type Rates struct {
	Classes int
	// Layers maps stage index → matrix for every profiled stage.
	Layers map[int]*LayerRates
}

// Clone deep-copies all matrices (CAP'NN-M mutates a copy).
func (r *Rates) Clone() *Rates {
	c := &Rates{Classes: r.Classes, Layers: make(map[int]*LayerRates, len(r.Layers))}
	for k, v := range r.Layers {
		c.Layers[k] = v.Clone()
	}
	return c
}

// profileBatch is the forward batch size used while profiling.
const profileBatch = 32

// Compute profiles the network over ds and returns the firing-rate
// matrices for the given stage indices. The dataset should contain an
// equal number of samples per class (paper §III); classes with zero
// samples yield zero rates. The network's current prune masks are
// respected (masked units simply never fire), but profiling is normally
// done on the unpruned model.
func Compute(net *nn.Network, ds *data.Dataset, stageIdx []int) (*Rates, error) {
	stages := net.Stages()
	res := &Rates{Classes: ds.Classes, Layers: make(map[int]*LayerRates, len(stageIdx))}
	type acc struct {
		stage *nn.Stage
		sum   []float64 // units × classes accumulated firing fractions
	}
	accs := make([]*acc, 0, len(stageIdx))
	for _, si := range stageIdx {
		if si < 0 || si >= len(stages) {
			return nil, fmt.Errorf("firing: stage %d outside [0,%d)", si, len(stages))
		}
		st := stages[si]
		if st.Act == nil {
			return nil, fmt.Errorf("firing: stage %d (%s) has no ReLU to observe", si, st.Unit.Name())
		}
		a := &acc{stage: &stages[si], sum: make([]float64, st.Unit.Units()*ds.Classes)}
		accs = append(accs, a)
	}

	// batchLabels carries the current batch's labels into the hooks.
	var batchLabels []int
	for _, a := range accs {
		a := a
		units := a.stage.Unit.Units()
		outShape := a.stage.Unit.OutShape()
		unitSize := 1
		if len(outShape) == 3 {
			unitSize = outShape[1] * outShape[2]
		}
		a.stage.Act.Hook = func(out *tensor.Tensor) {
			d := out.Data()
			n := out.Dim(0)
			for s := 0; s < n; s++ {
				class := batchLabels[s]
				base := s * units * unitSize
				for u := 0; u < units; u++ {
					fired := 0
					row := d[base+u*unitSize : base+(u+1)*unitSize]
					for _, v := range row {
						if v > 0 {
							fired++
						}
					}
					a.sum[u*ds.Classes+class] += float64(fired) / float64(unitSize)
				}
			}
		}
	}
	defer func() {
		for _, a := range accs {
			a.stage.Act.Hook = nil
		}
	}()

	perClass := make([]int, ds.Classes)
	for start := 0; start < ds.Len(); start += profileBatch {
		end := start + profileBatch
		if end > ds.Len() {
			end = ds.Len()
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		var x *tensor.Tensor
		x, batchLabels = ds.Batch(idx)
		net.Forward(x)
		for _, l := range batchLabels {
			perClass[l]++
		}
	}

	for i, a := range accs {
		units := a.stage.Unit.Units()
		lr := &LayerRates{Stage: stageIdx[i], Units: units, Classes: ds.Classes, F: make([]float64, units*ds.Classes)}
		for u := 0; u < units; u++ {
			for c := 0; c < ds.Classes; c++ {
				if perClass[c] > 0 {
					lr.F[u*ds.Classes+c] = a.sum[u*ds.Classes+c] / float64(perClass[c])
				}
			}
		}
		res.Layers[stageIdx[i]] = lr
	}
	return res, nil
}

// PrunableStages returns the paper's prunable layer set for a network:
// the last 6 unit layers minus the output layer (which is never pruned),
// i.e. 5 stage indices. For VGG-16 these are conv11–13, FC1 and FC2.
func PrunableStages(net *nn.Network) []int {
	n := len(net.Stages())
	start := n - 6
	if start < 0 {
		start = 0
	}
	var out []int
	for i := start; i < n-1; i++ {
		out = append(out, i)
	}
	return out
}
