package cloud

import (
	"fmt"

	"capnn/internal/core"
	"capnn/internal/nn"
	"capnn/internal/tensor"
)

// Device models the local-device side of the paper's framework over its
// whole lifecycle: it runs inference on its current model, keeps the
// monitoring period going, and — when the observed class usage drifts
// away from what the current model was personalized for — asks the cloud
// to prune again (paper §II: "the network can be pruned again if the
// user's preferences change").
type Device struct {
	client  *Client
	classes int
	variant string

	model   *nn.Network
	monitor *core.Monitor
	current core.Preferences
	// DriftThreshold is the total-variation distance between the
	// monitored usage and the personalized-for usage above which
	// Repersonalize fetches a new model. Defaults to 0.25.
	DriftThreshold float64
	// TopK is how many classes a repersonalization keeps. Defaults to
	// the current preference count (or 2 before the first fetch).
	TopK int
}

// NewDevice wraps a cloud client for a model with numClasses outputs.
// initial is the commodity (unpersonalized) model the device starts with.
func NewDevice(client *Client, initial *nn.Network, numClasses int, variant string) (*Device, error) {
	mon, err := core.NewMonitor(numClasses)
	if err != nil {
		return nil, err
	}
	if initial == nil {
		return nil, fmt.Errorf("cloud: device needs an initial model")
	}
	return &Device{
		client: client, classes: numClasses, variant: variant,
		model: initial, monitor: mon,
		DriftThreshold: 0.25, TopK: 2,
	}, nil
}

// Model returns the model currently deployed on the device.
func (d *Device) Model() *nn.Network { return d.model }

// Current returns the preferences the deployed model was personalized
// for (empty before the first personalization).
func (d *Device) Current() core.Preferences { return d.current }

// Classify runs one input through the deployed model, records the
// prediction in the monitoring period, and returns the predicted class.
func (d *Device) Classify(x *tensor.Tensor) (int, error) {
	logits := d.model.Forward(x)
	if logits.Dim(1) != d.classes {
		return 0, fmt.Errorf("cloud: model emits %d classes, device expects %d", logits.Dim(1), d.classes)
	}
	pred := tensor.Argmax(logits.Data()[:d.classes])
	if err := d.monitor.Observe(pred); err != nil {
		return 0, err
	}
	return pred, nil
}

// Drift returns the total-variation distance between the monitored usage
// distribution and the usage the current model was personalized for.
// Before any personalization it returns 1 (maximal drift) once there is
// at least one observation.
func (d *Device) Drift() float64 {
	if d.monitor.Total() == 0 {
		return 0
	}
	counts := d.monitor.Counts()
	total := float64(d.monitor.Total())
	tv := 0.0
	for c, n := range counts {
		observed := float64(n) / total
		personalized := d.current.Weight(c)
		diff := observed - personalized
		if diff < 0 {
			diff = -diff
		}
		tv += diff
	}
	return tv / 2
}

// Repersonalize fetches a freshly pruned model if usage drifted beyond
// DriftThreshold (or force is set). It returns whether a new model was
// installed.
func (d *Device) Repersonalize(force bool) (bool, Stats, error) {
	if !force && d.Drift() < d.DriftThreshold {
		return false, Stats{}, nil
	}
	k := d.TopK
	if d.current.K() > 0 {
		k = d.current.K()
	}
	prefs, err := d.monitor.Preferences(k)
	if err != nil {
		return false, Stats{}, err
	}
	model, stats, err := d.client.Fetch(Request{Variant: d.variant, Classes: prefs.Classes, Weights: prefs.Weights})
	if err != nil {
		return false, Stats{}, err
	}
	d.model = model
	d.current = prefs
	return true, stats, nil
}
