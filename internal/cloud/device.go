package cloud

import (
	"fmt"
	"time"

	"capnn/internal/core"
	"capnn/internal/nn"
	"capnn/internal/tensor"
)

// Device models the local-device side of the paper's framework over its
// whole lifecycle: it runs inference on its current model, keeps the
// monitoring period going, and — when the observed class usage drifts
// away from what the current model was personalized for — asks the cloud
// to prune again (paper §II: "the network can be pruned again if the
// user's preferences change").
//
// The device degrades gracefully when the cloud is unreachable: a
// failed Repersonalize keeps the current model serving inference,
// records the consecutive-failure streak, and backs off drift-triggered
// refetches exponentially until the cloud recovers — the device never
// ends up without a working model.
type Device struct {
	client  *Client
	classes int
	variant string

	model   *nn.Network
	monitor *core.Monitor
	current core.Preferences
	// DriftThreshold is the total-variation distance between the
	// monitored usage and the personalized-for usage above which
	// Repersonalize fetches a new model. Defaults to 0.25.
	DriftThreshold float64
	// TopK is how many classes a repersonalization keeps. Defaults to
	// the current preference count (or 2 before the first fetch).
	TopK int
	// RefetchBackoff is how long drift-triggered refetches are
	// suppressed after the first consecutive failure; the suppression
	// doubles per further failure, capped at MaxRefetchBackoff.
	// Defaults: 1 s base, 5 min cap.
	RefetchBackoff    time.Duration
	MaxRefetchBackoff time.Duration

	failures int
	retryAt  time.Time
	now      func() time.Time // injectable clock for tests
}

// NewDevice wraps a cloud client for a model with numClasses outputs.
// initial is the commodity (unpersonalized) model the device starts with.
func NewDevice(client *Client, initial *nn.Network, numClasses int, variant string) (*Device, error) {
	mon, err := core.NewMonitor(numClasses)
	if err != nil {
		return nil, err
	}
	if initial == nil {
		return nil, fmt.Errorf("cloud: device needs an initial model")
	}
	return &Device{
		client: client, classes: numClasses, variant: variant,
		model: initial, monitor: mon,
		DriftThreshold: 0.25, TopK: 2,
		RefetchBackoff:    time.Second,
		MaxRefetchBackoff: 5 * time.Minute,
		now:               time.Now,
	}, nil
}

// Model returns the model currently deployed on the device.
func (d *Device) Model() *nn.Network { return d.model }

// Current returns the preferences the deployed model was personalized
// for (empty before the first personalization).
func (d *Device) Current() core.Preferences { return d.current }

// ConsecutiveFailures reports how many Repersonalize fetches in a row
// have failed since the last success.
func (d *Device) ConsecutiveFailures() int { return d.failures }

// NextRetry returns when the next drift-triggered refetch may run
// (zero when the device is healthy). Forced repersonalizations ignore
// it.
func (d *Device) NextRetry() time.Time { return d.retryAt }

// Classify runs one input through the deployed model, records the
// prediction in the monitoring period, and returns the predicted class.
func (d *Device) Classify(x *tensor.Tensor) (int, error) {
	logits := d.model.Forward(x)
	if logits.Dim(1) != d.classes {
		return 0, fmt.Errorf("cloud: model emits %d classes, device expects %d", logits.Dim(1), d.classes)
	}
	pred := tensor.Argmax(logits.Data()[:d.classes])
	if err := d.monitor.Observe(pred); err != nil {
		return 0, err
	}
	return pred, nil
}

// Drift returns the total-variation distance between the monitored usage
// distribution and the usage the current model was personalized for.
// Before any personalization it returns 1 (maximal drift) once there is
// at least one observation. The monitoring window restarts after each
// successful repersonalization, so drift measures usage since the
// current model was installed, not the device's whole history.
func (d *Device) Drift() float64 {
	if d.monitor.Total() == 0 {
		return 0
	}
	counts := d.monitor.Counts()
	total := float64(d.monitor.Total())
	tv := 0.0
	for c, n := range counts {
		observed := float64(n) / total
		personalized := d.current.Weight(c)
		diff := observed - personalized
		if diff < 0 {
			diff = -diff
		}
		tv += diff
	}
	return tv / 2
}

// Repersonalize fetches a freshly pruned model if usage drifted beyond
// DriftThreshold (or force is set). It returns whether a new model was
// installed.
//
// On fetch failure the current model stays deployed and further
// drift-triggered refetches are suppressed for an exponentially growing
// backoff window (see RefetchBackoff); the returned error reports the
// failure. While suppressed, non-forced calls return (false, nil) —
// the device keeps serving with its last-good model.
func (d *Device) Repersonalize(force bool) (bool, Stats, error) {
	if !force {
		if d.Drift() < d.DriftThreshold {
			return false, Stats{}, nil
		}
		if d.failures > 0 && d.now().Before(d.retryAt) {
			return false, Stats{}, nil // backing off a failing cloud
		}
	}
	k := d.TopK
	if d.current.K() > 0 {
		k = d.current.K()
	}
	var prefs core.Preferences
	if d.monitor.Total() == 0 && d.current.K() > 0 {
		// Forced refresh inside a fresh monitoring window: keep the
		// preferences the device is already personalized for.
		prefs = d.current
	} else {
		var err error
		prefs, err = d.monitor.Preferences(k)
		if err != nil {
			return false, Stats{}, err
		}
	}
	model, stats, err := d.client.Fetch(Request{Variant: d.variant, Classes: prefs.Classes, Weights: prefs.Weights})
	if err != nil {
		d.failures++
		d.retryAt = d.now().Add(d.failureBackoff())
		return false, Stats{}, err
	}
	d.failures = 0
	d.retryAt = time.Time{}
	d.model = model
	d.current = prefs
	// Start a fresh monitoring window so drift reflects usage under
	// the new model rather than unbounded lifetime counts.
	d.monitor.Reset()
	return true, stats, nil
}

// failureBackoff returns the refetch suppression after the current
// failure streak: base·2^(failures-1), capped.
func (d *Device) failureBackoff() time.Duration {
	base := d.RefetchBackoff
	if base <= 0 {
		base = time.Second
	}
	max := d.MaxRefetchBackoff
	if max <= 0 {
		max = 5 * time.Minute
	}
	b := base
	for i := 1; i < d.failures && b < max; i++ {
		b *= 2
	}
	if b > max {
		b = max
	}
	return b
}
