package cloud

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"capnn/internal/nn"
)

// Client requests personalized models from a cloud server.
type Client struct {
	// Addr is the server's TCP address.
	Addr string
	// Timeout bounds the whole request (dial + round trip).
	Timeout time.Duration
}

// NewClient builds a client with a 30 s timeout.
func NewClient(addr string) *Client {
	return &Client{Addr: addr, Timeout: 30 * time.Second}
}

// Fetch sends the request and decodes the personalized model.
func (c *Client) Fetch(req Request) (*nn.Network, Stats, error) {
	conn, err := net.DialTimeout("tcp", c.Addr, c.Timeout)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("cloud: dial %s: %w", c.Addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
		return nil, Stats{}, err
	}
	if err := gob.NewEncoder(conn).Encode(&req); err != nil {
		return nil, Stats{}, fmt.Errorf("cloud: send: %w", err)
	}
	var resp Response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, Stats{}, fmt.Errorf("cloud: receive: %w", err)
	}
	if resp.Err != "" {
		return nil, Stats{}, fmt.Errorf("cloud: server: %s", resp.Err)
	}
	model, err := nn.Load(bytes.NewReader(resp.Model))
	if err != nil {
		return nil, Stats{}, fmt.Errorf("cloud: model payload: %w", err)
	}
	return model, resp.Stats, nil
}
