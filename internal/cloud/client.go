package cloud

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"capnn/internal/nn"
)

// Retry configures the client's retry loop: exponential backoff with
// full jitter, applied only to retryable failures (dial and transport
// errors, corrupted payloads, and server CodeBusy/CodeInternal).
// Validation errors are never retried — the same request cannot start
// succeeding.
type Retry struct {
	// MaxAttempts is the total number of tries (1 = no retry).
	MaxAttempts int
	// BaseBackoff is the backoff ceiling before the first retry; the
	// ceiling doubles each further attempt, capped at MaxBackoff, and
	// the actual sleep is uniform in [0, ceiling) (full jitter).
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff ceiling.
	MaxBackoff time.Duration
}

// DefaultRetry is the client default: 3 attempts, 100 ms base, 2 s cap.
func DefaultRetry() Retry {
	return Retry{MaxAttempts: 3, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 2 * time.Second}
}

// Error is the typed error Fetch returns, carrying enough structure for
// callers to distinguish retryable transport faults from permanent
// request errors.
type Error struct {
	// Op is the step that failed: "dial", "send", "receive", "server"
	// or "payload".
	Op string
	// Code is the server-reported outcome for Op == "server"; CodeOK
	// for client-side failures.
	Code Code
	// Attempts is how many tries Fetch made before giving up.
	Attempts int
	// Err is the underlying cause.
	Err error
}

// Error formats the failure with its step and attempt count.
func (e *Error) Error() string {
	if e.Op == "server" {
		return fmt.Sprintf("cloud: server [%s] after %d attempt(s): %v", e.Code, e.Attempts, e.Err)
	}
	return fmt.Sprintf("cloud: %s after %d attempt(s): %v", e.Op, e.Attempts, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Retryable reports whether another attempt could plausibly succeed:
// transport faults and corrupt payloads are transient, server errors
// defer to their Code.
func (e *Error) Retryable() bool {
	if e.Op == "server" {
		return e.Code.Retryable()
	}
	return true // dial, send, receive, payload: all transport-shaped
}

// Client requests personalized models from a cloud server.
type Client struct {
	// Addr is the server's TCP address.
	Addr string
	// DialTimeout bounds establishing the connection; RequestTimeout
	// bounds the round trip (send + server work + receive) once
	// connected.
	DialTimeout    time.Duration
	RequestTimeout time.Duration
	// Retry governs the backoff loop around transient failures.
	Retry Retry
	// OnRetry, when set, observes each retry: it is called with the
	// 1-based number of the attempt that just failed and its error,
	// before the backoff sleep. Useful for logging and for tests that
	// assert fault paths were exercised.
	OnRetry func(attempt int, err error)
}

// NewClient builds a client with 5 s dial / 30 s round-trip timeouts
// and the default retry policy.
func NewClient(addr string) *Client {
	return &Client{
		Addr:           addr,
		DialTimeout:    5 * time.Second,
		RequestTimeout: 30 * time.Second,
		Retry:          DefaultRetry(),
	}
}

// Fetch sends the request and decodes the personalized model, retrying
// transient failures per the client's Retry policy. On failure the
// returned error is an *Error.
func (c *Client) Fetch(req Request) (*nn.Network, Stats, error) {
	req.Version = ProtocolVersion
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var last *Error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(c.backoff(i))
		}
		model, st, ferr := c.fetchOnce(req)
		if ferr == nil {
			return model, st, nil
		}
		last = ferr
		last.Attempts = i + 1
		if !ferr.Retryable() {
			break
		}
		if c.OnRetry != nil && i+1 < attempts {
			c.OnRetry(i+1, ferr)
		}
	}
	return nil, Stats{}, last
}

// backoff returns the full-jitter sleep before retry attempt i (1-based).
func (c *Client) backoff(i int) time.Duration {
	base := c.Retry.BaseBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	exp := i - 1
	if exp > 20 { // 2^20 × base already dwarfs any sane MaxBackoff
		exp = 20
	}
	ceiling := base << uint(exp)
	if max := c.Retry.MaxBackoff; max > 0 && ceiling > max {
		ceiling = max
	}
	return time.Duration(rand.Int63n(int64(ceiling) + 1))
}

func (c *Client) fetchOnce(req Request) (*nn.Network, Stats, *Error) {
	dialTimeout := c.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", c.Addr, dialTimeout)
	if err != nil {
		return nil, Stats{}, &Error{Op: "dial", Err: fmt.Errorf("dial %s: %w", c.Addr, err)}
	}
	defer conn.Close()
	reqTimeout := c.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = 30 * time.Second
	}
	if err := conn.SetDeadline(time.Now().Add(reqTimeout)); err != nil {
		return nil, Stats{}, &Error{Op: "send", Err: err}
	}
	if err := gob.NewEncoder(conn).Encode(&req); err != nil {
		return nil, Stats{}, &Error{Op: "send", Err: err}
	}
	var resp Response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, Stats{}, &Error{Op: "receive", Err: err}
	}
	if resp.Err != "" {
		code := resp.Code
		if code == CodeOK {
			// Pre-versioning servers set Err without a code; those
			// errors were all request-validation failures.
			code = CodeBadRequest
		}
		return nil, Stats{}, &Error{Op: "server", Code: code, Err: errors.New(resp.Err)}
	}
	if resp.ModelSum != 0 && ModelSum(resp.Model) != resp.ModelSum {
		return nil, Stats{}, &Error{Op: "payload", Err: fmt.Errorf("model checksum mismatch (%d bytes corrupted in transit)", len(resp.Model))}
	}
	model, err := nn.Load(bytes.NewReader(resp.Model))
	if err != nil {
		return nil, Stats{}, &Error{Op: "payload", Err: fmt.Errorf("model payload: %w", err)}
	}
	return model, resp.Stats, nil
}
