package cloud

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"capnn/internal/core"
	"capnn/internal/nn"
)

// Server personalizes models on request. It owns a core.System (whose
// network it mutates while pruning), so requests are serialized with a
// mutex — matching the paper's model of a cloud service that prunes per
// user request.
type Server struct {
	mu  sync.Mutex
	sys *core.System

	lnMu sync.Mutex
	ln   net.Listener
	wg   sync.WaitGroup
}

// NewServer wraps a prepared system.
func NewServer(sys *core.System) *Server {
	return &Server{sys: sys}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serve loops in a background goroutine until
// Close is called.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				s.handle(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener and waits for in-flight requests.
func (s *Server) Close() error {
	s.lnMu.Lock()
	ln := s.ln
	s.ln = nil
	s.lnMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var req Request
	if err := dec.Decode(&req); err != nil {
		_ = enc.Encode(&Response{Err: fmt.Sprintf("decode: %v", err)})
		return
	}
	resp := s.Personalize(req)
	_ = enc.Encode(resp)
}

// Personalize executes one request against the system. Exposed so the
// protocol can be exercised without sockets.
func (s *Server) Personalize(req Request) *Response {
	s.mu.Lock()
	defer s.mu.Unlock()

	variant, err := parseVariant(req.Variant)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	var prefs core.Preferences
	if req.Weights == nil {
		prefs = core.Uniform(req.Classes)
	} else {
		prefs, err = core.Weighted(req.Classes, req.Weights)
		if err != nil {
			return &Response{Err: err.Error()}
		}
	}
	prefs.Normalize()
	if err := prefs.Validate(s.sys.Rates.Classes); err != nil {
		return &Response{Err: err.Error()}
	}

	masks, err := s.sys.Prune(variant, prefs)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	net := s.sys.Net
	net.ClearPruning()
	origParams := net.ParamCount()
	net.SetPruning(masks)
	compact, err := nn.Compact(net)
	net.ClearPruning()
	if err != nil {
		return &Response{Err: err.Error()}
	}
	var buf bytes.Buffer
	if err := nn.Save(&buf, compact); err != nil {
		return &Response{Err: err.Error()}
	}
	st := Stats{RelativeSize: float64(compact.ParamCount()) / float64(origParams)}
	for _, m := range masks {
		for _, p := range m {
			st.TotalUnits++
			if p {
				st.PrunedUnits++
			}
		}
	}
	return &Response{Model: buf.Bytes(), Stats: st}
}

func parseVariant(v string) (core.Variant, error) {
	switch v {
	case "B", "b":
		return core.VariantB, nil
	case "W", "w":
		return core.VariantW, nil
	case "M", "m":
		return core.VariantM, nil
	default:
		return "", fmt.Errorf("cloud: unknown variant %q (want B, W or M)", v)
	}
}
