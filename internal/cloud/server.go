package cloud

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"capnn/internal/core"
	"capnn/internal/nn"
)

// Config bounds a Server's exposure to slow, dead, or abusive peers.
// Zero fields take the defaults from DefaultConfig.
type Config struct {
	// ReadTimeout is how long a connection may take to deliver its
	// request before the handler gives up, so a peer that connects
	// and hangs cannot hold a goroutine past its deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing the response to a peer that stops
	// reading.
	WriteTimeout time.Duration
	// MaxRequestBytes caps how much of a request the gob decoder will
	// consume; oversized requests fail decoding and are rejected with
	// CodeBadRequest.
	MaxRequestBytes int64
	// MaxInflight bounds concurrently admitted requests. Excess
	// requests are shed immediately with CodeBusy rather than queued
	// without bound.
	MaxInflight int
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		ReadTimeout:     30 * time.Second,
		WriteTimeout:    30 * time.Second,
		MaxRequestBytes: 1 << 20,
		MaxInflight:     64,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = d.ReadTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = d.WriteTimeout
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = d.MaxRequestBytes
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = d.MaxInflight
	}
	return c
}

// Server personalizes models on request. It owns a core.System (whose
// network it mutates while pruning), so requests are serialized with a
// mutex — matching the paper's model of a cloud service that prunes per
// user request.
type Server struct {
	mu  sync.Mutex
	sys *core.System
	cfg Config

	inflight chan struct{}

	// hookAfterPrune, when set by tests, runs between installing the
	// pruning masks and compacting — the window where a panic would
	// leave masks on the shared network without recovery.
	hookAfterPrune func()

	lnMu sync.Mutex
	ln   net.Listener
	wg   sync.WaitGroup

	drainMu  sync.Mutex
	draining bool
}

// NewServer wraps a prepared system with the default Config.
func NewServer(sys *core.System) *Server { return NewServerWith(sys, DefaultConfig()) }

// NewServerWith wraps a prepared system with explicit limits.
func NewServerWith(sys *core.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{sys: sys, cfg: cfg, inflight: make(chan struct{}, cfg.MaxInflight)}
}

// Inflight reports how many requests are currently admitted — useful
// for load-shedding tests and monitoring.
func (s *Server) Inflight() int { return len(s.inflight) }

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serve loops in a background goroutine until
// Close is called.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	return s.Serve(ln), nil
}

// Serve accepts connections from ln — which may be wrapped, e.g. with
// internal/faults fault injection — until Close is called, and returns
// the listener's address.
func (s *Server) Serve(ln net.Listener) string {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				defer func() { _ = recover() }() // a handler panic must not kill the server
				s.handle(conn)
			}()
		}
	}()
	return ln.Addr().String()
}

// Close stops the listener and waits for in-flight requests.
func (s *Server) Close() error {
	s.lnMu.Lock()
	ln := s.ln
	s.ln = nil
	s.lnMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown drains the server gracefully: the listener stops accepting,
// requests still arriving on open connections are shed with CodeBusy,
// and in-flight personalizations get up to timeout to finish. It
// returns an error when the deadline expires with handlers still
// running (they are not killed — the caller decides whether to wait
// longer or exit).
func (s *Server) Shutdown(timeout time.Duration) error {
	s.lnMu.Lock()
	ln := s.ln
	s.ln = nil
	s.lnMu.Unlock()
	var lnErr error
	if ln != nil {
		lnErr = ln.Close()
	}
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return lnErr
	case <-time.After(timeout):
		return fmt.Errorf("cloud: drain deadline %v exceeded with requests in flight", timeout)
	}
}

func (s *Server) isDraining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

func (s *Server) handle(conn net.Conn) {
	// A dead or stalled peer cannot hold this goroutine past the
	// configured deadlines.
	_ = conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	dec := gob.NewDecoder(io.LimitReader(conn, s.cfg.MaxRequestBytes))
	var req Request
	if err := dec.Decode(&req); err != nil {
		s.respond(conn, errResponse(CodeBadRequest, fmt.Sprintf("decode: %v", err)))
		return
	}
	if s.isDraining() {
		s.respond(conn, errResponse(CodeBusy, "server draining, retry against another replica"))
		return
	}
	select {
	case s.inflight <- struct{}{}:
		defer func() { <-s.inflight }()
	default:
		s.respond(conn, errResponse(CodeBusy, "server busy: in-flight limit reached, retry with backoff"))
		return
	}
	s.respond(conn, s.Personalize(req))
}

func (s *Server) respond(conn net.Conn, resp *Response) {
	_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	_ = gob.NewEncoder(conn).Encode(resp)
}

// Personalize executes one request against the system. Exposed so the
// protocol can be exercised without sockets. A panic while pruning is
// recovered into a CodeInternal response, and the shared network is
// always left unmasked.
func (s *Server) Personalize(req Request) (resp *Response) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			// A panic mid-prune must not leave masks installed on the
			// shared network for the next request to inherit.
			s.sys.Net.ClearPruning()
			resp = errResponse(CodeInternal, fmt.Sprintf("internal: %v", r))
		}
	}()

	if req.Version > ProtocolVersion {
		return errResponse(CodeBadRequest, fmt.Sprintf("protocol version %d not supported (server speaks ≤ %d)", req.Version, ProtocolVersion))
	}
	variant, err := parseVariant(req.Variant)
	if err != nil {
		return errResponse(CodeBadRequest, err.Error())
	}
	var prefs core.Preferences
	if req.Weights == nil {
		prefs = core.Uniform(req.Classes)
	} else {
		prefs, err = core.Weighted(req.Classes, req.Weights)
		if err != nil {
			return errResponse(CodeBadRequest, err.Error())
		}
	}
	prefs.Normalize()
	if err := prefs.Validate(s.sys.Rates.Classes); err != nil {
		return errResponse(CodeBadRequest, err.Error())
	}

	masks, err := s.sys.Prune(variant, prefs)
	if err != nil {
		return errResponse(CodeInternal, err.Error())
	}
	net := s.sys.Net
	net.ClearPruning()
	origParams := net.ParamCount()
	net.SetPruning(masks)
	if s.hookAfterPrune != nil {
		s.hookAfterPrune()
	}
	compact, err := nn.Compact(net)
	net.ClearPruning()
	if err != nil {
		return errResponse(CodeInternal, err.Error())
	}
	var buf bytes.Buffer
	if err := nn.Save(&buf, compact); err != nil {
		return errResponse(CodeInternal, err.Error())
	}
	st := Stats{RelativeSize: float64(compact.ParamCount()) / float64(origParams)}
	for _, m := range masks {
		for _, p := range m {
			st.TotalUnits++
			if p {
				st.PrunedUnits++
			}
		}
	}
	return &Response{
		Version:  ProtocolVersion,
		Code:     CodeOK,
		Model:    buf.Bytes(),
		ModelSum: ModelSum(buf.Bytes()),
		Stats:    st,
	}
}

func parseVariant(v string) (core.Variant, error) {
	switch v {
	case "B", "b":
		return core.VariantB, nil
	case "W", "w":
		return core.VariantW, nil
	case "M", "m":
		return core.VariantM, nil
	default:
		return "", fmt.Errorf("cloud: unknown variant %q (want B, W or M)", v)
	}
}
