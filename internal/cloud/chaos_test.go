package cloud

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"capnn/internal/faults"
	"capnn/internal/nn"
)

// waitFor polls cond until it holds or the window elapses.
func waitFor(t *testing.T, window time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for: %s", msg)
}

// modelCopy round-trips a network through its serialized form so tests
// can hand a device a model that shares no memory with the server's.
func modelCopy(t *testing.T, net *nn.Network) *nn.Network {
	t.Helper()
	var buf bytes.Buffer
	if err := nn.Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	m, err := nn.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Satellite regression: a peer that connects and then hangs (or sends
// garbage and never reads the error response) must not hold a handler
// goroutine past the server's deadlines.
func TestHungClientCannotHoldHandler(t *testing.T) {
	f := getFixture(t)
	srv := NewServerWith(f.sys, Config{ReadTimeout: 150 * time.Millisecond, WriteTimeout: 150 * time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	time.Sleep(50 * time.Millisecond) // let the accept loop settle
	base := runtime.NumGoroutine()

	var conns []net.Conn
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < 4; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c) // connect and say nothing
	}
	// The decode-error path: garbage request, then hang without reading
	// the error response the server writes back.
	gc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gc.Write([]byte("definitely not gob")); err != nil {
		t.Fatal(err)
	}
	conns = append(conns, gc)

	waitFor(t, 5*time.Second, func() bool {
		return runtime.NumGoroutine() <= base+1 && srv.Inflight() == 0
	}, fmt.Sprintf("handler goroutines to drain (base %d, now %d, inflight %d)",
		base, runtime.NumGoroutine(), srv.Inflight()))

	// The server must still serve real clients afterwards.
	if _, _, err := NewClient(addr).Fetch(Request{Variant: "B", Classes: []int{0, 1}}); err != nil {
		t.Fatalf("server unusable after hung clients: %v", err)
	}
}

// The in-flight limit sheds excess load with a typed, retryable busy
// error instead of queuing without bound.
func TestServerShedsLoadWhenBusy(t *testing.T) {
	f := getFixture(t)
	srv := NewServerWith(f.sys, Config{MaxInflight: 1})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Hold the system mutex so the first admitted request parks inside
	// its in-flight slot.
	srv.mu.Lock()
	firstErr := make(chan error, 1)
	go func() {
		cl := NewClient(addr)
		cl.Retry.MaxAttempts = 1
		_, _, err := cl.Fetch(Request{Variant: "B", Classes: []int{0}})
		firstErr <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return srv.Inflight() == 1 }, "first request to occupy the in-flight slot")

	cl := NewClient(addr)
	cl.Retry.MaxAttempts = 1
	_, _, err = cl.Fetch(Request{Variant: "B", Classes: []int{0}})
	srv.mu.Unlock()
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("overload error not typed: %v", err)
	}
	if ce.Code != CodeBusy || !ce.Retryable() {
		t.Fatalf("want retryable busy, got code=%v retryable=%v (%v)", ce.Code, ce.Retryable(), ce)
	}
	if err := <-firstErr; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
}

// A panic mid-prune is recovered into a CodeInternal response and never
// leaves masks installed on the shared network.
func TestPanicRecoveryClearsMasks(t *testing.T) {
	f := getFixture(t)
	srv := NewServer(f.sys)
	srv.hookAfterPrune = func() { panic("chaos monkey") }
	resp := srv.Personalize(Request{Variant: "W", Classes: []int{0, 1}})
	if resp.Code != CodeInternal || resp.Err == "" {
		t.Fatalf("panic not surfaced as internal error: %+v", resp)
	}
	if !resp.Code.Retryable() {
		t.Fatal("internal errors must be retryable")
	}
	for _, c := range f.sys.Net.PrunedCounts() {
		if c != 0 {
			t.Fatal("panic left masks installed on the shared network")
		}
	}
	srv.hookAfterPrune = nil
	if resp := srv.Personalize(Request{Variant: "W", Classes: []int{0, 1}}); resp.Code != CodeOK {
		t.Fatalf("server did not recover after panic: %+v", resp)
	}
}

// Oversized requests are cut off at the decode limit instead of being
// buffered without bound.
func TestOversizeRequestRejected(t *testing.T) {
	f := getFixture(t)
	srv := NewServerWith(f.sys, Config{MaxRequestBytes: 256})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(addr)
	cl.Retry.MaxAttempts = 1
	_, _, err = cl.Fetch(Request{Variant: "W", Classes: []int{0}, Weights: make([]float64, 4096)})
	if err == nil {
		t.Fatal("oversized request accepted")
	}
	// A normal request still fits.
	if _, _, err := NewClient(addr).Fetch(Request{Variant: "B", Classes: []int{0, 1}}); err != nil {
		t.Fatalf("normal request rejected by size limit: %v", err)
	}
}

// Fetch errors carry enough structure to separate retryable transport
// faults from permanent validation failures, and the retry loop honors
// the distinction.
func TestClientErrorTyping(t *testing.T) {
	cl := NewClient("127.0.0.1:1") // nothing listens here
	cl.DialTimeout = 500 * time.Millisecond
	cl.Retry = Retry{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	_, _, err := cl.Fetch(Request{Variant: "W", Classes: []int{0}})
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("dial failure not typed: %v", err)
	}
	if ce.Op != "dial" || !ce.Retryable() || ce.Attempts != 3 {
		t.Fatalf("dial failure: op=%q retryable=%v attempts=%d", ce.Op, ce.Retryable(), ce.Attempts)
	}

	f := getFixture(t)
	srv := NewServer(f.sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl = NewClient(addr)
	cl.Retry = Retry{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	_, _, err = cl.Fetch(Request{Variant: "X", Classes: []int{0}})
	if !errors.As(err, &ce) {
		t.Fatalf("validation failure not typed: %v", err)
	}
	if ce.Code != CodeBadRequest || ce.Retryable() {
		t.Fatalf("validation failure: code=%v retryable=%v", ce.Code, ce.Retryable())
	}
	if ce.Attempts != 1 {
		t.Fatalf("validation failure was retried %d times", ce.Attempts)
	}
}

// Satellite: N goroutines × M requests against one server under -race;
// every response must be a valid, loadable, runnable model.
func TestConcurrentFetchRace(t *testing.T) {
	f := getFixture(t)
	srv := NewServer(f.sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	x, _ := f.sets.Test.Batch([]int{0, 5})
	const N, M = 6, 4
	errCh := make(chan error, N*M)
	var wg sync.WaitGroup
	for g := 0; g < N; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := NewClient(addr)
			for m := 0; m < M; m++ {
				model, st, err := cl.Fetch(Request{Variant: "W",
					Classes: []int{g % 4, (g + 1) % 4}, Weights: []float64{0.7, 0.3}})
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d req %d: %w", g, m, err)
					return
				}
				if model.ParamCount() <= 0 || st.RelativeSize <= 0 || st.RelativeSize > 1 {
					errCh <- fmt.Errorf("goroutine %d req %d: degenerate model (%d params, rel %v)",
						g, m, model.ParamCount(), st.RelativeSize)
					return
				}
				logits := model.Forward(x)
				if logits.Dim(1) != 4 {
					errCh <- fmt.Errorf("goroutine %d req %d: model emits %d classes", g, m, logits.Dim(1))
					return
				}
				for _, v := range logits.Data() {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						errCh <- fmt.Errorf("goroutine %d req %d: non-finite logits", g, m)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// Satellite: after repeated fetch failures the device suppresses
// drift-triggered refetches with exponential backoff, keeps serving its
// last-good model, and recovers cleanly once the cloud is back.
func TestDeviceBacksOffAfterFailures(t *testing.T) {
	f := getFixture(t)
	cl := NewClient("127.0.0.1:1") // dead cloud
	cl.DialTimeout = 300 * time.Millisecond
	cl.Retry.MaxAttempts = 1
	dev, err := NewDevice(cl, modelCopy(t, f.sys.Net), 4, "W")
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1000, 0)
	dev.now = func() time.Time { return clock }

	// Drive drift above threshold: the user only sees class 1.
	byClass := f.sets.Test.ByClass()
	for i := 0; i < 8; i++ {
		x, _ := f.sets.Test.Batch([]int{byClass[1][i%len(byClass[1])]})
		if _, err := dev.Classify(x); err != nil {
			t.Fatal(err)
		}
	}
	if dev.Drift() <= dev.DriftThreshold {
		t.Fatalf("drift %v not above threshold", dev.Drift())
	}

	changed, _, err := dev.Repersonalize(false)
	if err == nil || changed {
		t.Fatalf("fetch against dead cloud: changed=%v err=%v", changed, err)
	}
	if dev.ConsecutiveFailures() != 1 || dev.Model() == nil {
		t.Fatalf("after 1 failure: failures=%d", dev.ConsecutiveFailures())
	}
	firstRetry := dev.NextRetry()
	if !firstRetry.After(clock) {
		t.Fatal("no backoff recorded after failure")
	}

	// While backing off, drift-triggered refetches are suppressed
	// without error and the old model keeps serving.
	changed, _, err = dev.Repersonalize(false)
	if err != nil || changed {
		t.Fatalf("suppressed refetch: changed=%v err=%v", changed, err)
	}
	if dev.ConsecutiveFailures() != 1 {
		t.Fatal("suppressed refetch counted as a failure")
	}
	x, _ := f.sets.Test.Batch([]int{byClass[1][0]})
	if _, err := dev.Classify(x); err != nil {
		t.Fatalf("device lost its working model during outage: %v", err)
	}

	// Past the backoff the device tries again; the second failure
	// doubles the suppression window.
	clock = firstRetry.Add(time.Millisecond)
	if changed, _, err = dev.Repersonalize(false); err == nil || changed {
		t.Fatalf("second fetch against dead cloud: changed=%v err=%v", changed, err)
	}
	if dev.ConsecutiveFailures() != 2 {
		t.Fatalf("failures=%d after second attempt", dev.ConsecutiveFailures())
	}
	if got, want := dev.NextRetry().Sub(clock), 2*dev.RefetchBackoff; got != want {
		t.Fatalf("second backoff %v, want %v", got, want)
	}

	// Cloud recovers: the next permitted refetch succeeds, resets the
	// failure streak, and opens a fresh monitoring window.
	srv := NewServer(f.sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl.Addr = addr
	clock = dev.NextRetry().Add(time.Millisecond)
	changed, stats, err := dev.Repersonalize(false)
	if err != nil || !changed {
		t.Fatalf("recovery fetch: changed=%v err=%v", changed, err)
	}
	if dev.ConsecutiveFailures() != 0 || !dev.NextRetry().IsZero() {
		t.Fatalf("failure state not reset: failures=%d retryAt=%v", dev.ConsecutiveFailures(), dev.NextRetry())
	}
	if stats.RelativeSize >= 1 {
		t.Fatalf("recovered model not personalized: %+v", stats)
	}
	if dev.Current().K() == 0 {
		t.Fatal("preferences not recorded on recovery")
	}
	if total := len(dev.monitor.Counts()); total == 0 {
		t.Fatal("monitor vanished")
	}
	if dev.monitor.Total() != 0 {
		t.Fatalf("monitoring window not reset after success: %d observations", dev.monitor.Total())
	}
}

// A model payload corrupted in transit must be rejected by the CRC-32
// check as a retryable transport fault, never installed.
func TestCorruptPayloadDetected(t *testing.T) {
	f := getFixture(t)
	srv := NewServer(f.sys)
	resp := srv.Personalize(Request{Variant: "B", Classes: []int{0, 1}})
	if resp.Code != CodeOK {
		t.Fatalf("personalize: %+v", resp)
	}
	// Flip one bit mid-payload but keep the original checksum, as a
	// corrupting transport would.
	resp.Model[len(resp.Model)/2] ^= 0x40

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var req Request
				_ = gob.NewDecoder(c).Decode(&req)
				_ = gob.NewEncoder(c).Encode(resp)
			}(conn)
		}
	}()

	cl := NewClient(ln.Addr().String())
	cl.Retry = Retry{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	_, _, err = cl.Fetch(Request{Variant: "B", Classes: []int{0, 1}})
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt payload not rejected: %v", err)
	}
	if ce.Op != "payload" || !strings.Contains(ce.Err.Error(), "checksum") {
		t.Fatalf("want checksum mismatch, got op=%q err=%v", ce.Op, ce.Err)
	}
	if !ce.Retryable() || ce.Attempts != 2 {
		t.Fatalf("corruption must be retried: retryable=%v attempts=%d", ce.Retryable(), ce.Attempts)
	}
}

// Acceptance: the full device↔cloud loop under injected connection
// drops, mid-stream closes, latency, and corrupt payloads. The device
// must retry with backoff, never panic, never install a corrupt model,
// and keep classifying with its last-good model throughout.
func TestChaosDeviceNeverLosesModel(t *testing.T) {
	f := getFixture(t)
	srv := NewServerWith(f.sys, Config{ReadTimeout: 2 * time.Second, WriteTimeout: 2 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{
		Seed: 11, Latency: time.Millisecond,
		DropProb: 0.10, DropAfter: 256,
		CloseProb: 0.20, CloseAfter: 512,
		CorruptProb: 0.25,
	}
	addr := srv.Serve(faults.WrapListener(ln, plan))
	defer srv.Close()

	cl := NewClient(addr)
	cl.DialTimeout = 2 * time.Second
	cl.RequestTimeout = 2 * time.Second
	cl.Retry = Retry{MaxAttempts: 6, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	retries := 0
	cl.OnRetry = func(attempt int, err error) {
		retries++
		t.Logf("retry after attempt %d: %v", attempt, err)
	}
	dev, err := NewDevice(cl, modelCopy(t, f.sys.Net), 4, "W")
	if err != nil {
		t.Fatal(err)
	}
	dev.RefetchBackoff = time.Millisecond

	probe, _ := f.sets.Test.Batch([]int{0, 3, 7})
	assertWorkingModel := func(stage string) {
		t.Helper()
		m := dev.Model()
		if m == nil {
			t.Fatalf("%s: device has no model", stage)
		}
		logits := m.Forward(probe)
		if logits.Dim(1) != 4 {
			t.Fatalf("%s: deployed model emits %d classes", stage, logits.Dim(1))
		}
		for _, v := range logits.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: deployed model produces non-finite logits (corrupt install?)", stage)
			}
		}
	}
	assertWorkingModel("initial")

	byClass := f.sets.Test.ByClass()
	successes, failedRounds := 0, 0
	for i := 0; i < 12; i++ {
		// User traffic: mostly class 1, some class 3.
		for j := 0; j < 6; j++ {
			cls := 1
			if j%3 == 2 {
				cls = 3
			}
			x, _ := f.sets.Test.Batch([]int{byClass[cls][(i*6+j)%len(byClass[cls])]})
			if _, err := dev.Classify(x); err != nil {
				t.Fatalf("round %d: classify failed — device lost its model: %v", i, err)
			}
		}
		changed, _, err := dev.Repersonalize(i%4 == 0)
		switch {
		case err != nil:
			failedRounds++
		case changed:
			successes++
		}
		// Whatever happened on the wire, the device must still hold a
		// working model.
		assertWorkingModel(fmt.Sprintf("round %d (err=%v)", i, err))
	}
	if successes == 0 {
		t.Fatalf("no repersonalization ever succeeded under chaos (%d failed rounds)", failedRounds)
	}
	if dev.Current().K() == 0 {
		t.Fatal("device never recorded personalized preferences")
	}
	// With seed 11 over half the connections are faulty; the loop must
	// have survived through actual retries, not a lucky clean run.
	if retries == 0 {
		t.Fatal("chaos plan injected no faults — test exercised nothing")
	}
	t.Logf("chaos: %d personalizations succeeded, %d rounds failed transiently, %d transport retries",
		successes, failedRounds, retries)
}
