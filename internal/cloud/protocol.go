// Package cloud implements the paper's pruning process (§II, Fig. 1a):
// the original model and its firing rates live on a cloud server; a local
// device sends the user's preferences (class subset + usage weights, or
// monitoring-derived counts); the cloud prunes with the requested CAP'NN
// variant — no retraining — compacts the model, and ships it back for
// local inference. The wire format is gob over TCP.
//
// The protocol is versioned and fault-aware: responses carry a typed
// Code so clients can distinguish retryable failures (server busy,
// internal fault) from permanent ones (malformed request), and the
// model payload is covered by a CRC-32 checksum so a corrupted transfer
// is detected rather than installed.
package cloud

import "hash/crc32"

// ProtocolVersion is the current wire protocol version. Servers accept
// requests at or below their own version; clients stamp every request.
// Version 0 is the unversioned seed protocol and remains accepted.
// Version 2 added the serving tier's QoS fields (per-request deadline
// budget, tenant, priority lane); frames without them decode as
// deadline-less default-tenant interactive traffic, so every older
// client keeps working unchanged.
const ProtocolVersion = 2

// Code classifies a response outcome so clients can decide whether a
// retry can help.
type Code uint8

const (
	// CodeOK is a successful personalization.
	CodeOK Code = iota
	// CodeBadRequest is a permanent failure: the request is malformed,
	// oversized, names unknown classes/variants, or uses a protocol
	// version the server does not speak. Retrying the same request
	// cannot succeed.
	CodeBadRequest
	// CodeBusy means the server shed the request to protect itself
	// (in-flight limit reached). Retrying after a backoff is expected.
	CodeBusy
	// CodeInternal is a server-side fault (panic, serialization
	// failure) unrelated to the request's validity; a retry may land
	// on a healthy path.
	CodeInternal
	// CodeWrongOwner means the contacted node is not the owner of the
	// request's route key under the node's view of the cluster ring. A
	// gateway resolves it by re-looking the key up on its current ring
	// and retrying against the node that owns it now.
	CodeWrongOwner
	// CodeRingChanged means the node's ring version disagrees with the
	// version stamped on the request: cluster membership changed while
	// the request was in flight. Like CodeWrongOwner it is resolved by
	// re-routing on a fresh ring, not by retrying the same node.
	CodeRingChanged
	// CodeOverQuota means admission control shed the request because its
	// tenant exhausted its token-bucket quota or its priority lane is
	// saturated. The bucket refills over time, so retrying after a
	// backoff is expected to succeed — unlike CodeBusy it signals a
	// per-tenant limit, not server-wide load.
	CodeOverQuota
	// CodeExpired means the request's propagated deadline passed before
	// it could be served (shed at admission, in the batch queue, or
	// during gateway failover). The budget is gone: retrying the same
	// request cannot meet a deadline that has already elapsed, so the
	// code is permanent — callers must issue a fresh request with a
	// fresh budget if the answer still matters.
	CodeExpired
)

// Retryable reports whether a client may reasonably retry after this
// code. The routing codes are retryable in the sense that the same
// request re-routed on a current ring is expected to succeed;
// over-quota is retryable after a backoff long enough for the tenant's
// bucket to refill. Expired is not: the deadline the client asked for
// has passed, and no retry can rewind it.
func (c Code) Retryable() bool {
	return c == CodeBusy || c == CodeInternal || c == CodeWrongOwner || c == CodeRingChanged || c == CodeOverQuota
}

// String names the code for errors and logs.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeBadRequest:
		return "bad-request"
	case CodeBusy:
		return "busy"
	case CodeInternal:
		return "internal"
	case CodeWrongOwner:
		return "wrong-owner"
	case CodeRingChanged:
		return "ring-changed"
	case CodeOverQuota:
		return "over-quota"
	case CodeExpired:
		return "expired"
	default:
		return "unknown"
	}
}

// Request is what the device sends: which variant to run and the user's
// preferences. Classes and Weights are parallel; Weights may be nil for
// CAP'NN-B (it ignores usage) or to request uniform usage.
type Request struct {
	// Version is the protocol version the client speaks. Zero (from
	// pre-versioning clients) is accepted.
	Version int
	// Variant is "B", "W" or "M".
	Variant string
	Classes []int
	Weights []float64
}

// Stats summarizes the pruning outcome alongside the shipped model.
type Stats struct {
	// RelativeSize is pruned params / original params.
	RelativeSize float64
	// PrunedUnits and TotalUnits count units over the prunable stages.
	PrunedUnits, TotalUnits int
}

// Response carries either a typed error or a gob-serialized compacted
// network (nn.Save format) plus its stats.
type Response struct {
	// Version is the server's protocol version.
	Version int
	// Code classifies the outcome; Err is its human-readable detail
	// (empty on success).
	Code Code
	Err  string
	// Model is the compacted personalized network; ModelSum is the
	// IEEE CRC-32 of Model, letting the client reject a payload that
	// was corrupted in transit instead of installing it. Zero means
	// the (pre-versioning) server did not compute one.
	Model    []byte
	ModelSum uint32
	Stats    Stats
}

// errResponse builds a typed failure response.
func errResponse(code Code, msg string) *Response {
	return &Response{Version: ProtocolVersion, Code: code, Err: msg}
}

// ModelSum is the checksum covering Response.Model — exported so
// out-of-package harnesses (corpus generators, integration tests) can
// build and verify valid responses.
func ModelSum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
