// Package cloud implements the paper's pruning process (§II, Fig. 1a):
// the original model and its firing rates live on a cloud server; a local
// device sends the user's preferences (class subset + usage weights, or
// monitoring-derived counts); the cloud prunes with the requested CAP'NN
// variant — no retraining — compacts the model, and ships it back for
// local inference. The wire format is gob over TCP.
package cloud

// Request is what the device sends: which variant to run and the user's
// preferences. Classes and Weights are parallel; Weights may be nil for
// CAP'NN-B (it ignores usage) or to request uniform usage.
type Request struct {
	// Variant is "B", "W" or "M".
	Variant string
	Classes []int
	Weights []float64
}

// Stats summarizes the pruning outcome alongside the shipped model.
type Stats struct {
	// RelativeSize is pruned params / original params.
	RelativeSize float64
	// PrunedUnits and TotalUnits count units over the prunable stages.
	PrunedUnits, TotalUnits int
}

// Response carries either an error message or a gob-serialized compacted
// network (nn.Save format) plus its stats.
type Response struct {
	Err   string
	Model []byte
	Stats Stats
}
