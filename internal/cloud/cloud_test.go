package cloud

import (
	"math"
	"sync"
	"testing"

	"capnn/internal/core"
	"capnn/internal/data"
	"capnn/internal/nn"
	"capnn/internal/train"
)

type fixture struct {
	sys  *core.System
	sets *data.Sets
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		gen, err := data.NewGenerator(data.SynthConfig{Classes: 4, Groups: 2, H: 12, W: 12, GroupMix: 0.5, NoiseStd: 0.3, MaxShift: 1, Seed: 51})
		if err != nil {
			fixErr = err
			return
		}
		sets := data.MakeSets(gen, data.SetSizes{TrainPerClass: 15, ValPerClass: 8, TestPerClass: 8, ProfilePerClass: 10})
		net := nn.NewBuilder(1, 12, 12, 61).
			Conv(6).ReLU().Pool().
			Conv(8).ReLU().Pool().
			Flatten().Dense(12).ReLU().Dense(4).MustBuild()
		tc := train.Config{Epochs: 8, BatchSize: 10, LR: 0.05, Momentum: 0.9, Seed: 5}
		if _, err := train.Train(net, sets.Train, nil, tc); err != nil {
			fixErr = err
			return
		}
		params := core.DefaultParams()
		params.Epsilon = 0.1
		sys, err := core.NewSystem(net, sets.Val, sets.Profile, nil, params)
		if err != nil {
			fixErr = err
			return
		}
		fix = &fixture{sys: sys, sets: sets}
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

// DESIGN.md invariant 8: the model served over TCP reproduces local
// pruning exactly.
func TestRoundTripMatchesLocalPruning(t *testing.T) {
	f := getFixture(t)
	srv := NewServer(f.sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	req := Request{Variant: "W", Classes: []int{0, 2}, Weights: []float64{0.8, 0.2}}
	model, stats, err := NewClient(addr).Fetch(req)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelativeSize <= 0 || stats.RelativeSize > 1 {
		t.Fatalf("relative size %v", stats.RelativeSize)
	}

	// Local reference: same pruning applied directly.
	prefs, _ := core.Weighted(req.Classes, req.Weights)
	masks, err := f.sys.Prune(core.VariantW, prefs)
	if err != nil {
		t.Fatal(err)
	}
	f.sys.Net.SetPruning(masks)
	local, err := nn.Compact(f.sys.Net)
	f.sys.Net.ClearPruning()
	if err != nil {
		t.Fatal(err)
	}

	x, _ := f.sets.Test.Batch([]int{0, 5, 9})
	a, b := local.Forward(x), model.Forward(x)
	for i, v := range a.Data() {
		if math.Abs(v-b.Data()[i]) > 1e-12 {
			t.Fatal("served model diverges from local pruning")
		}
	}
	if model.ParamCount() != local.ParamCount() {
		t.Fatalf("param counts differ: %d vs %d", model.ParamCount(), local.ParamCount())
	}
}

func TestAllVariantsServed(t *testing.T) {
	f := getFixture(t)
	srv := NewServer(f.sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(addr)
	for _, v := range []string{"B", "W", "M"} {
		model, stats, err := cl.Fetch(Request{Variant: v, Classes: []int{1, 3}})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if model == nil || stats.TotalUnits == 0 {
			t.Fatalf("%s: empty response", v)
		}
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	f := getFixture(t)
	srv := NewServer(f.sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(addr)
	cases := []Request{
		{Variant: "X", Classes: []int{0}},
		{Variant: "W", Classes: nil},
		{Variant: "W", Classes: []int{99}},
		{Variant: "W", Classes: []int{0, 0}},
		{Variant: "W", Classes: []int{0}, Weights: []float64{1, 2}},
	}
	for i, req := range cases {
		if _, _, err := cl.Fetch(req); err == nil {
			t.Errorf("case %d accepted: %+v", i, req)
		}
	}
}

func TestPersonalizeDirectCall(t *testing.T) {
	f := getFixture(t)
	srv := NewServer(f.sys)
	resp := srv.Personalize(Request{Variant: "B", Classes: []int{0}})
	if resp.Err != "" {
		t.Fatalf("direct personalize failed: %s", resp.Err)
	}
	if len(resp.Model) == 0 {
		t.Fatal("no model bytes")
	}
	// Server leaves the system unmasked.
	for _, c := range f.sys.Net.PrunedCounts() {
		if c != 0 {
			t.Fatal("server left masks installed")
		}
	}
}

func TestConcurrentRequests(t *testing.T) {
	f := getFixture(t)
	srv := NewServer(f.sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = NewClient(addr).Fetch(Request{Variant: "W", Classes: []int{i % 4}, Weights: nil})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestClientDialFailure(t *testing.T) {
	cl := NewClient("127.0.0.1:1") // nothing listens on port 1
	if _, _, err := cl.Fetch(Request{Variant: "W", Classes: []int{0}}); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}

func TestDeviceLifecycleRepersonalizes(t *testing.T) {
	f := getFixture(t)
	srv := NewServer(f.sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dev, err := NewDevice(NewClient(addr), f.sys.Net, 4, "W")
	if err != nil {
		t.Fatal(err)
	}
	// Before observations: no drift, no refetch.
	if dev.Drift() != 0 {
		t.Fatalf("initial drift %v", dev.Drift())
	}
	changed, _, err := dev.Repersonalize(false)
	if err != nil || changed {
		t.Fatalf("repersonalized with no observations: %v %v", changed, err)
	}

	// The user only ever sees class 1 (with a little class 3).
	byClass := f.sets.Test.ByClass()
	for i := 0; i < 12; i++ {
		cls := 1
		if i%4 == 3 {
			cls = 3
		}
		x, _ := f.sets.Test.Batch([]int{byClass[cls][i%len(byClass[cls])]})
		if _, err := dev.Classify(x); err != nil {
			t.Fatal(err)
		}
	}
	if dev.Drift() <= dev.DriftThreshold {
		t.Fatalf("drift %v not above threshold with unpersonalized model", dev.Drift())
	}
	origParams := dev.Model().ParamCount()
	changed, stats, err := dev.Repersonalize(false)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("high drift did not trigger repersonalization")
	}
	if stats.RelativeSize >= 1 || dev.Model().ParamCount() >= origParams {
		t.Fatalf("personalized model not smaller: %+v", stats)
	}
	if dev.Current().K() == 0 {
		t.Fatal("current preferences not recorded")
	}

	// Force a second personalization (preferences change scenario).
	changed, _, err = dev.Repersonalize(true)
	if err != nil || !changed {
		t.Fatalf("forced repersonalization failed: %v %v", changed, err)
	}
}

func TestDeviceValidation(t *testing.T) {
	if _, err := NewDevice(NewClient("x"), nil, 4, "W"); err == nil {
		t.Fatal("nil initial model accepted")
	}
	if _, err := NewDevice(NewClient("x"), &nn.Network{}, 1, "W"); err == nil {
		t.Fatal("single-class device accepted")
	}
}
