package cloud

import (
	"encoding/gob"
	"net"
	"strings"
	"testing"
	"time"
)

// Shutdown must drain: the admitted request finishes and is answered,
// a request arriving on an already-open connection during the drain is
// shed with CodeBusy (not dropped), and the listener stops accepting.
func TestShutdownDrainsInflightAndShedsNew(t *testing.T) {
	f := getFixture(t)
	srv := NewServer(f.sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Park an in-flight personalization on the system mutex.
	srv.mu.Lock()
	firstErr := make(chan error, 1)
	go func() {
		cl := NewClient(addr)
		cl.Retry.MaxAttempts = 1
		_, _, err := cl.Fetch(Request{Variant: "B", Classes: []int{0}})
		firstErr <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return srv.Inflight() == 1 }, "first request to be admitted")

	// Open a connection now but send its request only after the drain
	// begins — the window where requests must be shed, not dropped.
	late, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	time.Sleep(50 * time.Millisecond) // let the accept loop pick it up

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(10 * time.Second) }()
	waitFor(t, 5*time.Second, srv.isDraining, "drain to begin")

	if err := gob.NewEncoder(late).Encode(&Request{Variant: "B", Classes: []int{0}}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := gob.NewDecoder(late).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeBusy {
		t.Fatalf("late request got code %v (%s), want busy shed", resp.Code, resp.Err)
	}

	// Shutdown must still be waiting on the parked personalization.
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned (%v) with a request in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	srv.mu.Unlock()
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-firstErr; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after Shutdown")
	}
}

// When in-flight work outlives the deadline, Shutdown reports it
// instead of blocking forever; the work itself is not killed and still
// completes once unblocked.
func TestShutdownDeadlineExpires(t *testing.T) {
	f := getFixture(t)
	srv := NewServer(f.sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	srv.mu.Lock()
	firstErr := make(chan error, 1)
	go func() {
		cl := NewClient(addr)
		cl.Retry.MaxAttempts = 1
		_, _, err := cl.Fetch(Request{Variant: "B", Classes: []int{0}})
		firstErr <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return srv.Inflight() == 1 }, "first request to be admitted")

	err = srv.Shutdown(50 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "drain deadline") {
		t.Fatalf("Shutdown err=%v, want drain deadline error", err)
	}

	srv.mu.Unlock()
	if err := srv.Close(); err != nil { // waits out the straggler
		t.Fatalf("Close after failed drain: %v", err)
	}
	if err := <-firstErr; err != nil {
		t.Fatalf("straggler request failed: %v", err)
	}
}
