package cloud

import "testing"

// TestCodeRetryability pins the retry contract every layer above leans
// on: transient conditions (busy, internal faults, misrouting that a
// fresh ring fixes, over-quota that a refilled bucket fixes) invite a
// retry with backoff, while permanent outcomes (bad request, expired
// deadline) must not — retrying an expired request spends capacity on
// an answer nobody is waiting for.
func TestCodeRetryability(t *testing.T) {
	retryable := []Code{CodeBusy, CodeInternal, CodeWrongOwner, CodeRingChanged, CodeOverQuota}
	permanent := []Code{CodeOK, CodeBadRequest, CodeExpired}
	for _, c := range retryable {
		if !c.Retryable() {
			t.Errorf("%s must be retryable", c)
		}
	}
	for _, c := range permanent {
		if c.Retryable() {
			t.Errorf("%s must not be retryable", c)
		}
	}
}

// Every code renders a stable name — these strings appear in logs,
// loadgen summaries, and smoke-test greps.
func TestCodeStrings(t *testing.T) {
	want := map[Code]string{
		CodeOK:          "ok",
		CodeBadRequest:  "bad-request",
		CodeBusy:        "busy",
		CodeInternal:    "internal",
		CodeWrongOwner:  "wrong-owner",
		CodeRingChanged: "ring-changed",
		CodeOverQuota:   "over-quota",
		CodeExpired:     "expired",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("Code(%d).String() = %q, want %q", c, c, name)
		}
	}
}
