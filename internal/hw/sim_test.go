package hw

import (
	"strings"
	"testing"

	"capnn/internal/nn"
)

func smallNet() *nn.Network {
	return nn.NewBuilder(2, 8, 8, 1).
		Conv(4).ReLU().Pool().
		Flatten().Dense(10).ReLU().Dense(3).MustBuild()
}

func TestSimulateCountsKnownValues(t *testing.T) {
	net := smallNet()
	counts, perLayer, err := Simulate(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// conv: out 4×8×8 = 256 elems × (2 in × 9) = 4608 MACs.
	// dense1: 160 in? flatten = 4×4×4 = 64 → 10: 640 MACs; dense2: 30.
	wantMACs := int64(256*18 + 64*10 + 10*3)
	if counts.MACs != wantMACs {
		t.Fatalf("MACs = %d, want %d", counts.MACs, wantMACs)
	}
	// ReLU ops: 256 (conv out) + 10 (fc out).
	if counts.ReLUOps != 266 {
		t.Fatalf("ReLUOps = %d, want 266", counts.ReLUOps)
	}
	// Pool ops: 4×4×4 = 64 outputs.
	if counts.PoolOps != 64 {
		t.Fatalf("PoolOps = %d, want 64", counts.PoolOps)
	}
	if len(perLayer) != len(net.Layers) {
		t.Fatalf("per-layer entries %d, want %d", len(perLayer), len(net.Layers))
	}
	// SRAM reads = 2 per MAC plus ReLU (266) and pool-window (256) reads.
	if want := 2*counts.MACs + 266 + 256; counts.SRAMReads != want {
		t.Fatalf("SRAMReads = %d, want %d", counts.SRAMReads, want)
	}
	if counts.Cycles <= 0 || counts.DRAMReads <= 0 {
		t.Fatalf("inconsistent counts %+v", counts)
	}
}

func TestSimulateRejectsMaskedNetwork(t *testing.T) {
	net := smallNet()
	net.SetPruning(map[int][]bool{0: {true, false, false, false}})
	if _, _, err := Simulate(net, DefaultConfig()); err == nil {
		t.Fatal("masked network accepted; energy would be wrong")
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	if _, _, err := Simulate(smallNet(), Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestCompactionReducesEveryCount(t *testing.T) {
	net := smallNet()
	full, _, err := Simulate(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	net.SetPruning(map[int][]bool{
		0: {true, true, false, false},
		1: {true, true, true, true, true, false, false, false, false, false},
	})
	compact, err := nn.Compact(net)
	if err != nil {
		t.Fatal(err)
	}
	pruned, _, err := Simulate(compact, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pruned.MACs >= full.MACs || pruned.DRAMReads >= full.DRAMReads ||
		pruned.SRAMReads >= full.SRAMReads || pruned.Cycles > full.Cycles {
		t.Fatalf("pruning did not reduce counts: full %+v pruned %+v", full, pruned)
	}
}

func TestWeightTilingIncreasesInputTraffic(t *testing.T) {
	// A dense layer whose weights exceed the weight buffer must refetch
	// the input once per weight tile.
	net := nn.NewBuilder(1, 1, 64, 2).Flatten().Dense(512).MustBuild()
	small := DefaultConfig()
	small.WeightBufBytes = 1 << 10 // 1 KiB: 64×512×2B = 64 KiB → 64 tiles
	small.InputBufBytes = 16       // force input respill
	big := DefaultConfig()
	cSmall, _, err := Simulate(net, small)
	if err != nil {
		t.Fatal(err)
	}
	cBig, _, err := Simulate(net, big)
	if err != nil {
		t.Fatal(err)
	}
	if cSmall.DRAMReads <= cBig.DRAMReads {
		t.Fatalf("tiny buffers did not increase DRAM traffic: %d vs %d", cSmall.DRAMReads, cBig.DRAMReads)
	}
	// Weights are still fetched exactly once in both cases.
	weightWords := int64(64*512 + 512)
	if cBig.DRAMReads < weightWords {
		t.Fatalf("weight words undercounted: %d < %d", cBig.DRAMReads, weightWords)
	}
}

func TestVGGSimulation(t *testing.T) {
	net, err := nn.BuildVGG(nn.DefaultVGGConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	counts, perLayer, err := Simulate(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if counts.MACs < 500_000 {
		t.Fatalf("VGG-mini MACs %d suspiciously low", counts.MACs)
	}
	// Early conv layers dominate MACs (large spatial maps).
	var convMACs, fcMACs int64
	for _, lc := range perLayer {
		switch lc.Name[:2] {
		case "co":
			convMACs += lc.Counts.MACs
		case "fc":
			fcMACs += lc.Counts.MACs
		}
	}
	if convMACs <= fcMACs {
		t.Fatalf("conv MACs %d not dominant over FC %d", convMACs, fcMACs)
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{MACs: 1, ReLUOps: 2, PoolOps: 3, SRAMReads: 4, SRAMWrites: 5, DRAMReads: 6, DRAMWrites: 7, Cycles: 8}
	b := a
	a.Add(b)
	if a.MACs != 2 || a.Cycles != 16 || a.DRAMWrites != 14 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestCeilDiv(t *testing.T) {
	if ceilDiv(10, 3) != 4 || ceilDiv(9, 3) != 3 || ceilDiv(0, 3) != 0 {
		t.Fatal("ceilDiv wrong")
	}
	if ceilDiv(5, 0) != 0 {
		t.Fatal("ceilDiv by zero should yield 0")
	}
}

func TestUtilizationBounds(t *testing.T) {
	net := smallNet()
	cfg := DefaultConfig()
	total, perLayer, err := Simulate(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := Utilize(total, perLayer, cfg)
	if u.MACUtil < 0 || u.MACUtil > 1 {
		t.Fatalf("MAC utilization %v outside [0,1]", u.MACUtil)
	}
	// At Table-I-scale DRAM bandwidth the small conv net is memory bound
	// somewhere.
	if len(u.MemoryBound) == 0 {
		t.Log("no memory-bound layers on default device (acceptable but unusual)")
	}
}

func TestUtilizationImprovesWithBandwidth(t *testing.T) {
	net := smallNet()
	slow := DefaultConfig()
	slow.DRAMWordsPerCycle = 1
	fast := DefaultConfig()
	fast.DRAMWordsPerCycle = 64
	st, sp, err := Simulate(net, slow)
	if err != nil {
		t.Fatal(err)
	}
	ft, fp, err := Simulate(net, fast)
	if err != nil {
		t.Fatal(err)
	}
	us := Utilize(st, sp, slow)
	uf := Utilize(ft, fp, fast)
	if uf.MACUtil < us.MACUtil {
		t.Fatalf("more DRAM bandwidth lowered utilization: %v → %v", us.MACUtil, uf.MACUtil)
	}
	if len(uf.MemoryBound) > len(us.MemoryBound) {
		t.Fatalf("more bandwidth increased memory-bound layers: %v vs %v", uf.MemoryBound, us.MemoryBound)
	}
}

func TestPrintCounts(t *testing.T) {
	net := smallNet()
	total, perLayer, err := Simulate(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	PrintCounts(&buf, perLayer, total)
	out := buf.String()
	if !strings.Contains(out, "conv0") || !strings.Contains(out, "total") {
		t.Fatalf("missing rows:\n%s", out)
	}
}
