package hw

import (
	"fmt"
	"io"
	"strings"
)

// Utilization summarizes how well one inference uses the device.
type Utilization struct {
	// MACUtil is achieved MACs / (cycles × MAC units): 1.0 means the MAC
	// array never stalls on memory.
	MACUtil float64
	// MemoryBound lists the layers whose cycle count is set by DRAM
	// bandwidth rather than compute — the layers CAP'NN's DRAM-traffic
	// reduction speeds up directly.
	MemoryBound []string
}

// Utilize computes device utilization from a simulation's outputs.
func Utilize(total Counts, perLayer []LayerCounts, cfg Config) Utilization {
	var u Utilization
	if total.Cycles > 0 && cfg.MACUnits > 0 {
		u.MACUtil = float64(total.MACs) / float64(total.Cycles*int64(cfg.MACUnits))
	}
	for _, lc := range perLayer {
		if lc.Counts.MACs == 0 {
			continue
		}
		compute := ceilDiv(lc.Counts.MACs, int64(cfg.MACUnits))
		if lc.Counts.Cycles > compute {
			u.MemoryBound = append(u.MemoryBound, lc.Name)
		}
	}
	return u
}

// PrintCounts renders per-layer operation counts.
func PrintCounts(w io.Writer, perLayer []LayerCounts, total Counts) {
	fmt.Fprintf(w, "%-12s %12s %12s %12s %10s\n", "layer", "MACs", "SRAM r/w", "DRAM r/w", "cycles")
	fmt.Fprintln(w, strings.Repeat("-", 64))
	for _, lc := range perLayer {
		c := lc.Counts
		if c.MACs == 0 && c.ReLUOps == 0 && c.PoolOps == 0 {
			continue
		}
		fmt.Fprintf(w, "%-12s %12d %12d %12d %10d\n",
			lc.Name, c.MACs, c.SRAMReads+c.SRAMWrites, c.DRAMReads+c.DRAMWrites, c.Cycles)
	}
	fmt.Fprintf(w, "%-12s %12d %12d %12d %10d\n", "total",
		total.MACs, total.SRAMReads+total.SRAMWrites, total.DRAMReads+total.DRAMWrites, total.Cycles)
}
