// Package hw models the paper's local inference device (Fig. 2): a
// TPU-like accelerator with on-chip weight/input/output SRAM buffers, an
// array of MAC units, activation and pooling units, and off-chip DRAM.
// Simulate walks a network layer by layer and produces the operation and
// memory-access counts the analytical energy model of Zhang et al. [14]
// consumes: MACs, ReLU/pool operations, SRAM accesses, and
// buffer-capacity-aware DRAM traffic.
package hw

import (
	"fmt"

	"capnn/internal/nn"
)

// Config describes the device. All buffer sizes are in bytes.
type Config struct {
	// MACUnits is the number of parallel multiply-accumulate units.
	MACUnits int
	// WeightBufBytes, InputBufBytes, OutputBufBytes are the on-chip
	// SRAM buffer capacities.
	WeightBufBytes, InputBufBytes, OutputBufBytes int
	// BytesPerWord is the storage width of weights and activations
	// (the paper uses 16-bit = 2 bytes).
	BytesPerWord int
	// DRAMWordsPerCycle is the off-chip transfer bandwidth used for the
	// cycle estimate.
	DRAMWordsPerCycle int
}

// DefaultConfig is an edge-scale TPU-like device: 256 MACs, 64 KiB weight
// buffer, 32 KiB input buffer, 32 KiB output buffer, 16-bit words.
func DefaultConfig() Config {
	return Config{
		MACUnits:          256,
		WeightBufBytes:    64 << 10,
		InputBufBytes:     32 << 10,
		OutputBufBytes:    32 << 10,
		BytesPerWord:      2,
		DRAMWordsPerCycle: 4,
	}
}

// Validate rejects impossible device descriptions.
func (c Config) Validate() error {
	if c.MACUnits <= 0 || c.WeightBufBytes <= 0 || c.InputBufBytes <= 0 ||
		c.OutputBufBytes <= 0 || c.BytesPerWord <= 0 || c.DRAMWordsPerCycle <= 0 {
		return fmt.Errorf("hw: non-positive field in config %+v", c)
	}
	return nil
}

// Counts aggregates per-inference operation and access totals.
type Counts struct {
	MACs       int64 // multiply-accumulate operations
	ReLUOps    int64
	PoolOps    int64 // one per pooled output element
	SRAMReads  int64 // on-chip reads (words)
	SRAMWrites int64 // on-chip writes (words)
	DRAMReads  int64 // off-chip reads (words)
	DRAMWrites int64 // off-chip writes (words)
	Cycles     int64 // double-buffered max(compute, memory) per layer
}

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	c.MACs += o.MACs
	c.ReLUOps += o.ReLUOps
	c.PoolOps += o.PoolOps
	c.SRAMReads += o.SRAMReads
	c.SRAMWrites += o.SRAMWrites
	c.DRAMReads += o.DRAMReads
	c.DRAMWrites += o.DRAMWrites
	c.Cycles += o.Cycles
}

// LayerCounts pairs a layer with its contribution.
type LayerCounts struct {
	Name   string
	Counts Counts
}

// Simulate estimates one inference of a single sample through net on the
// device. Pass a compacted network (nn.Compact) to see the effect of
// pruning: pruned units are physically absent, so every count shrinks.
// Masked-but-not-compacted networks are rejected, because a real device
// would still fetch and multiply the masked weights.
func Simulate(net *nn.Network, cfg Config) (Counts, []LayerCounts, error) {
	if err := cfg.Validate(); err != nil {
		return Counts{}, nil, err
	}
	for _, st := range net.Stages() {
		for _, p := range st.Unit.Pruned() {
			if p {
				return Counts{}, nil, fmt.Errorf("hw: layer %s carries a prune mask; compact the network first", st.Unit.Name())
			}
		}
	}
	var total Counts
	var perLayer []LayerCounts
	for _, l := range net.Layers {
		var lc Counts
		switch t := l.(type) {
		case *nn.Conv2D:
			lc = c.convCounts(t, cfg)
		case *nn.Dense:
			lc = c.denseCounts(t, cfg)
		case *nn.ReLU:
			elems := int64(shapeElems(t.OutShape()))
			lc.ReLUOps = elems
			lc.SRAMReads = elems
			lc.SRAMWrites = elems
			lc.Cycles = elems / int64(cfg.MACUnits)
		case *nn.MaxPool2D:
			in := int64(shapeElems(t.InShape()))
			out := int64(shapeElems(t.OutShape()))
			lc.PoolOps = out
			lc.SRAMReads = in
			lc.SRAMWrites = out
			lc.Cycles = in / int64(cfg.MACUnits)
		case *nn.Flatten:
			// Pure reindexing: free on the device.
		case *nn.Dropout:
			// Identity at inference time.
		default:
			return Counts{}, nil, fmt.Errorf("hw: unsupported layer type %T", l)
		}
		total.Add(lc)
		perLayer = append(perLayer, LayerCounts{Name: l.Name(), Counts: lc})
	}
	return total, perLayer, nil
}

// c groups the unit-layer counting rules.
var c counter

type counter struct{}

// convCounts models a weight-stationary pass: every weight is fetched
// from DRAM exactly once; the input feature map is fetched once if it
// fits in the input buffer, otherwise once per weight tile; outputs are
// written back once. SRAM sees two reads per MAC (weight + activation)
// and one write per output element.
func (counter) convCounts(l *nn.Conv2D, cfg Config) Counts {
	in := l.InShape()   // [C, H, W]
	out := l.OutShape() // [C, H, W]
	inWords := int64(in[0] * in[1] * in[2])
	outWords := int64(out[0] * out[1] * out[2])
	weightWords := int64(paramWords(l))
	macsPerOut := int64(in[0]) * int64(l.Kernel()) * int64(l.Kernel())
	macs := outWords * macsPerOut
	return memoryModel(macs, inWords, outWords, weightWords, cfg)
}

func (counter) denseCounts(l *nn.Dense, cfg Config) Counts {
	in := int64(l.InShape()[0])
	out := int64(l.OutShape()[0])
	weightWords := int64(paramWords(l))
	macs := in * out
	return memoryModel(macs, in, out, weightWords, cfg)
}

func memoryModel(macs, inWords, outWords, weightWords int64, cfg Config) Counts {
	var lc Counts
	lc.MACs = macs
	lc.SRAMReads = 2 * macs
	lc.SRAMWrites = outWords
	wBytes := weightWords * int64(cfg.BytesPerWord)
	inBytes := inWords * int64(cfg.BytesPerWord)
	wTiles := ceilDiv(wBytes, int64(cfg.WeightBufBytes))
	inPasses := int64(1)
	if inBytes > int64(cfg.InputBufBytes) {
		inPasses = wTiles
	}
	lc.DRAMReads = weightWords + inWords*inPasses
	lc.DRAMWrites = outWords
	compute := ceilDiv(macs, int64(cfg.MACUnits))
	memory := ceilDiv(lc.DRAMReads+lc.DRAMWrites, int64(cfg.DRAMWordsPerCycle))
	if compute > memory {
		lc.Cycles = compute
	} else {
		lc.Cycles = memory
	}
	return lc
}

func paramWords(l nn.Layer) int {
	n := 0
	for _, p := range l.Params() {
		n += p.W.Len()
	}
	return n
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

func shapeElems(s []int) int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}
