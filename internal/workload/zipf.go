package workload

import "math/rand"

// Domain-separation tags keep the independent random streams (event
// draws, per-user-epoch bases, flip offsets, burst episodes) from ever
// colliding in the hash space.
const (
	tagEvent      = 0xE1
	tagUser       = 0xE2
	tagFlipOffset = 0xE3
	tagBurst      = 0xE4
)

// splitmix advances and finalizes one step of the splitmix64 sequence —
// a cheap, well-mixed 64-bit permutation.
func splitmix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mix folds the values into one well-mixed 64-bit hash. Feeding each
// input through a full splitmix step keeps counter-like inputs (event
// index, user id, epoch) from producing correlated outputs.
func mix(vs ...uint64) uint64 {
	h := uint64(0x8A5CD789635D2DFF)
	for _, v := range vs {
		h = splitmix(h + v)
	}
	return h
}

// seedFor derives a math/rand seed for one (tag, values...) stream.
func seedFor(seed int64, tag uint64, vs ...uint64) int64 {
	h := splitmix(uint64(seed) + tag)
	for _, v := range vs {
		h = splitmix(h + v)
	}
	return int64(h)
}

// pickUser draws a user id zipf-distributed by popularity rank: id 0 is
// the hottest user.
func (m *Model) pickUser(rng *rand.Rand) uint64 {
	if m.cfg.Users == 1 {
		return 0
	}
	return rand.NewZipf(rng, m.cfg.ZipfS, 1, uint64(m.cfg.Users-1)).Uint64()
}

// drawIndex samples an index from a normalized weight vector.
func drawIndex(rng *rand.Rand, weights []float64) int {
	r := rng.Float64()
	acc := 0.0
	for j, w := range weights {
		acc += w
		if r < acc {
			return j
		}
	}
	return len(weights) - 1
}
