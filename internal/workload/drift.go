package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// DriftConfig describes the preference drift processes in units of
// virtual time (trace event indices). The zero value is stationary.
type DriftConfig struct {
	// DiurnalPeriod, if >0, sinusoidally modulates each user's in-set
	// class weights with this period, phase-offset per user and per
	// class — the "time of day" effect.
	DiurnalPeriod uint64
	// DiurnalAmp is the modulation depth ∈ [0,1). Defaults to 0.5 when
	// DiurnalPeriod is set.
	DiurnalAmp float64
	// FlipEvery, if >0, redraws each user's whole preference set every
	// FlipEvery events (staggered per user) — the sudden skew flip.
	FlipEvery uint64
	// Lag is how many events a user's *claimed* (wire) preferences trail
	// a behavior flip. During the lag the server sees traffic drawn from
	// the new mix under the old preference key. Defaults to FlipEvery/4.
	Lag uint64
	// BurstLen, if >0, divides time into intervals of this length; each
	// (user, interval) independently enters a bursty episode with
	// probability BurstProb, during which BurstWeight of the user's mass
	// concentrates on one in-set class.
	BurstLen uint64
	// BurstProb is the per-interval episode probability. Defaults to
	// 0.15 when BurstLen is set.
	BurstProb float64
	// BurstWeight is the mass the episode's hot class receives.
	// Defaults to 0.85.
	BurstWeight float64
}

func (d *DriftConfig) withDefaults() {
	if d.DiurnalPeriod > 0 && d.DiurnalAmp == 0 {
		d.DiurnalAmp = 0.5
	}
	if d.FlipEvery > 0 && d.Lag == 0 {
		d.Lag = d.FlipEvery / 4
	}
	if d.FlipEvery > 0 && d.Lag >= d.FlipEvery {
		d.Lag = d.FlipEvery - 1
	}
	if d.BurstLen > 0 {
		if d.BurstProb == 0 {
			d.BurstProb = 0.15
		}
		if d.BurstWeight == 0 {
			d.BurstWeight = 0.85
		}
	}
}

func (d DriftConfig) validate() error {
	if d.DiurnalAmp < 0 || d.DiurnalAmp >= 1 {
		return fmt.Errorf("workload: diurnal amp %v outside [0,1)", d.DiurnalAmp)
	}
	if d.BurstProb < 0 || d.BurstProb > 1 {
		return fmt.Errorf("workload: burst prob %v outside [0,1]", d.BurstProb)
	}
	if d.BurstWeight < 0 || d.BurstWeight >= 1 {
		return fmt.Errorf("workload: burst weight %v outside [0,1)", d.BurstWeight)
	}
	return nil
}

// Stationary reports whether the config describes a drift-free workload.
func (d DriftConfig) Stationary() bool {
	return d.DiurnalPeriod == 0 && d.FlipEvery == 0 && (d.BurstLen == 0 || d.BurstProb == 0)
}

// ParseDrift parses a compact drift spec of comma-separated key=value
// terms:
//
//	flip=N          redraw preferences every N events
//	lag=N           claimed preferences trail flips by N events
//	diurnal=N       diurnal modulation with period N
//	amp=F           diurnal modulation depth
//	burst-len=N     bursty-episode interval length
//	burst-prob=F    per-interval episode probability
//	burst-weight=F  hot-class mass during an episode
//
// "" and "off" parse to the stationary zero value.
func ParseDrift(spec string) (DriftConfig, error) {
	var d DriftConfig
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return d, nil
	}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		key, val, ok := strings.Cut(term, "=")
		if !ok {
			return d, fmt.Errorf("workload: drift term %q is not key=value", term)
		}
		switch key {
		case "flip", "lag", "diurnal", "burst-len":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return d, fmt.Errorf("workload: drift %s=%q: %v", key, val, err)
			}
			switch key {
			case "flip":
				d.FlipEvery = n
			case "lag":
				d.Lag = n
			case "diurnal":
				d.DiurnalPeriod = n
			case "burst-len":
				d.BurstLen = n
			}
		case "amp", "burst-prob", "burst-weight":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return d, fmt.Errorf("workload: drift %s=%q: %v", key, val, err)
			}
			switch key {
			case "amp":
				d.DiurnalAmp = f
			case "burst-prob":
				d.BurstProb = f
			case "burst-weight":
				d.BurstWeight = f
			}
		default:
			return d, fmt.Errorf("workload: unknown drift key %q", key)
		}
	}
	return d, d.validate()
}
