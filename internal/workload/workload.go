// Package workload synthesizes realistic serving traffic for CAP'NN
// clusters: zipf-distributed user popularity over arbitrarily large user
// populations, per-user class preferences correlated through the dataset's
// confusion groups, and preference drift over time (diurnal phases, bursty
// episodes, sudden skew flips).
//
// The model is seeded and counter-based: event i is a pure function of
// (Config, i), derived by hashing the seed with the event index and the
// per-user epoch. Nothing is stored per user, so a trace over millions of
// users streams in O(1) memory, any prefix is reproducible bit-for-bit,
// and generation parallelizes trivially (shard the index space; every
// shard assignment yields the same trace).
//
// Drift separates what a user *claims* from what they *do*: the claimed
// preference vector (what goes on the wire and keys the mask cache) is
// piecewise-constant per flip epoch and catches up to behavior only after
// a configurable lag, while the drawn class follows the continuously
// drifting actual mix. During the lag the server observes off-preference
// traffic — the skew window a proactive detector must catch before the
// accuracy guard trips.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"capnn/internal/core"
)

// Config parameterizes a workload model. The zero value is not usable;
// see NewModel for defaults applied to zero fields.
type Config struct {
	// Users is the population size. Popularity is zipf-distributed:
	// user 0 is the hottest, user Users-1 the coldest.
	Users int
	// Classes is the model's output class count.
	Classes int
	// Groups maps class → confusion group (e.g. data.SynthConfig.ClassGroups).
	// Preferences concentrate within a user's home group, mirroring how
	// real users care about semantically related classes. Nil puts every
	// class in its own group (uncorrelated preferences).
	Groups []int
	// ZipfS is the zipf skew exponent (>1; larger = more head-heavy).
	// Defaults to 1.2.
	ZipfS float64
	// MinK, MaxK bound the per-user preference breadth |K|.
	// Default 2..4.
	MinK, MaxK int
	// Drift configures the preference drift processes. The zero value is
	// a stationary workload: every user keeps one preference vector
	// forever.
	Drift DriftConfig
	// Seed drives all randomness. Equal configs ⇒ identical traces.
	Seed int64
}

func (c *Config) withDefaults() {
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.MinK == 0 {
		c.MinK = 2
	}
	if c.MaxK == 0 {
		c.MaxK = 4
	}
	if c.MaxK > c.Classes {
		c.MaxK = c.Classes
	}
	if c.MinK > c.MaxK {
		c.MinK = c.MaxK
	}
	c.Drift.withDefaults()
}

func (c Config) validate() error {
	if c.Users < 1 {
		return fmt.Errorf("workload: need ≥1 user, got %d", c.Users)
	}
	if c.Classes < 2 {
		return fmt.Errorf("workload: need ≥2 classes, got %d", c.Classes)
	}
	if c.Groups != nil && len(c.Groups) != c.Classes {
		return fmt.Errorf("workload: %d group entries for %d classes", len(c.Groups), c.Classes)
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("workload: zipf exponent must be >1, got %v", c.ZipfS)
	}
	if c.MinK < 1 || c.MinK > c.MaxK {
		return fmt.Errorf("workload: breadth bounds [%d,%d] invalid", c.MinK, c.MaxK)
	}
	return c.Drift.validate()
}

// Event is one trace entry: user u arrives at virtual time Index claiming
// Prefs (the wire preference vector, which keys the mask cache) and asks
// for an input of class Class (drawn from the user's *actual* current
// mix, which may have drifted ahead of the claim).
type Event struct {
	// Index is the event's position in the trace (its virtual time).
	Index uint64
	// User identifies the originating user (0 = most popular).
	User uint64
	// Prefs is the claimed preference vector, normalized.
	Prefs core.Preferences
	// Class is the true class of the requested input.
	Class int
	// Drifted reports that the user's behavior has flipped ahead of the
	// claimed preferences — the request is drawn from a newer epoch than
	// Prefs describes, so the server likely sees off-preference traffic.
	Drifted bool
}

// Model is an immutable, seeded workload. Safe for concurrent use.
type Model struct {
	cfg    Config
	groups [][]int // group → member classes
}

// NewModel validates cfg (after applying defaults to zero fields) and
// builds a model.
func NewModel(cfg Config) (*Model, error) {
	cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	groupOf := cfg.Groups
	if groupOf == nil {
		groupOf = make([]int, cfg.Classes)
		for c := range groupOf {
			groupOf[c] = c
		}
	}
	ng := 0
	for _, g := range groupOf {
		if g < 0 {
			return nil, fmt.Errorf("workload: negative group id %d", g)
		}
		if g+1 > ng {
			ng = g + 1
		}
	}
	m := &Model{cfg: cfg, groups: make([][]int, ng)}
	for c, g := range groupOf {
		m.groups[g] = append(m.groups[g], c)
	}
	// Drop empty groups so every draw lands on a populated one.
	nonEmpty := m.groups[:0]
	for _, g := range m.groups {
		if len(g) > 0 {
			nonEmpty = append(nonEmpty, g)
		}
	}
	m.groups = nonEmpty
	return m, nil
}

// Config returns the model's effective configuration (defaults applied).
func (m *Model) Config() Config { return m.cfg }

// At returns trace event i. It is a pure function of (Config, i): calling
// it from any goroutine, in any order, for any partition of the index
// space yields the same trace.
func (m *Model) At(i uint64) Event {
	rng := rand.New(rand.NewSource(seedFor(m.cfg.Seed, tagEvent, i)))
	user := m.pickUser(rng)

	actualEpoch := m.epochOf(user, i)
	claimedEpoch := m.claimedEpochOf(user, i)
	claimed := m.userBase(user, claimedEpoch)

	// The drawn class follows the *actual* mix: the current epoch's base
	// preferences modulated by the continuous drift processes.
	actual := m.userBase(user, actualEpoch)
	weights := m.driftedWeights(user, i, actual)
	class := actual.classes[drawIndex(rng, weights)]

	prefs, err := core.Weighted(claimed.classes, claimed.weights)
	if err != nil { // unreachable: bases always carry positive weights
		prefs = core.Uniform(claimed.classes)
	}
	prefs.Normalize()
	return Event{
		Index:   i,
		User:    user,
		Prefs:   prefs,
		Class:   class,
		Drifted: actualEpoch != claimedEpoch,
	}
}

// userBase is a user's base preference set for one flip epoch: a breadth
// drawn from [MinK,MaxK], classes drawn mostly from a home confusion
// group, and descending zipf-ish base weights.
type userBase struct {
	classes []int
	weights []float64 // parallel to classes, sums to 1
	phase   float64   // diurnal phase offset ∈ [0,1)
}

func (m *Model) userBase(user, epoch uint64) userBase {
	rng := rand.New(rand.NewSource(seedFor(m.cfg.Seed, tagUser, user, epoch)))
	home := rng.Intn(len(m.groups))
	k := m.cfg.MinK
	if m.cfg.MaxK > m.cfg.MinK {
		k += rng.Intn(m.cfg.MaxK - m.cfg.MinK + 1)
	}
	// Candidate order: home-group classes shuffled first, the rest after,
	// so preferences concentrate in one confusion group and spill over
	// only when the group is smaller than the breadth.
	pool := make([]int, 0, m.cfg.Classes)
	pool = append(pool, m.groups[home]...)
	rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
	spill := len(pool)
	for g, classes := range m.groups {
		if g != home {
			pool = append(pool, classes...)
		}
	}
	rest := pool[spill:]
	rng.Shuffle(len(rest), func(a, b int) { rest[a], rest[b] = rest[b], rest[a] })
	if k > len(pool) {
		k = len(pool)
	}
	b := userBase{classes: pool[:k:k], weights: make([]float64, k), phase: rng.Float64()}
	sum := 0.0
	for j := range b.weights {
		b.weights[j] = math.Pow(float64(j+1), -1.2)
		sum += b.weights[j]
	}
	for j := range b.weights {
		b.weights[j] /= sum
	}
	return b
}

// epochOf is user's flip epoch at virtual time t. Users flip at staggered
// offsets so the population never flips in lockstep.
func (m *Model) epochOf(user, t uint64) uint64 {
	fe := m.cfg.Drift.FlipEvery
	if fe == 0 {
		return 0
	}
	off := mix(uint64(m.cfg.Seed), tagFlipOffset, user) % fe
	return (t + off) / fe
}

// claimedEpochOf lags epochOf by Drift.Lag: after a behavior flip the
// wire preferences keep describing the previous epoch for Lag events.
func (m *Model) claimedEpochOf(user, t uint64) uint64 {
	if m.cfg.Drift.FlipEvery == 0 {
		return 0
	}
	lag := m.cfg.Drift.Lag
	if t < lag {
		t = 0
	} else {
		t -= lag
	}
	return m.epochOf(user, t)
}

// driftedWeights applies the continuous drift processes (diurnal
// modulation, bursty episodes) to a base preference mix. The result sums
// to 1.
func (m *Model) driftedWeights(user, t uint64, b userBase) []float64 {
	d := m.cfg.Drift
	w := append([]float64(nil), b.weights...)
	if d.DiurnalPeriod > 0 && d.DiurnalAmp > 0 {
		k := float64(len(w))
		for j := range w {
			ph := 2 * math.Pi * (float64(t)/float64(d.DiurnalPeriod) + b.phase + float64(j)/k)
			w[j] *= 1 + d.DiurnalAmp*math.Sin(ph)
			if w[j] < 1e-9 {
				w[j] = 1e-9
			}
		}
	}
	if d.BurstLen > 0 && d.BurstProb > 0 {
		interval := t / d.BurstLen
		h := mix(uint64(m.cfg.Seed), tagBurst, user, interval)
		if float64(h%1_000_000)/1e6 < d.BurstProb {
			// The episode concentrates BurstWeight of the mass on one
			// in-set class for the whole interval.
			hot := int((h >> 24) % uint64(len(w)))
			sum := 0.0
			for _, x := range w {
				sum += x
			}
			for j := range w {
				w[j] *= (1 - d.BurstWeight) / sum
			}
			w[hot] += d.BurstWeight
		}
	}
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	for j := range w {
		w[j] /= sum
	}
	return w
}

// Stream iterates a model's trace sequentially. Not safe for concurrent
// use; give each goroutine its own Stream (or call At directly).
type Stream struct {
	m    *Model
	next uint64
}

// Stream returns an iterator starting at event start.
func (m *Model) Stream(start uint64) *Stream { return &Stream{m: m, next: start} }

// Next returns the next event in the trace.
func (s *Stream) Next() Event {
	ev := s.m.At(s.next)
	s.next++
	return ev
}
