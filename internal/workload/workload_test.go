package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"capnn/internal/data"
)

func testConfig() Config {
	return Config{
		Users:   50_000,
		Classes: 10,
		Groups:  data.DefaultSynthConfig(10).ClassGroups(),
		Seed:    7,
		Drift: DriftConfig{
			FlipEvery:     400,
			Lag:           100,
			DiurnalPeriod: 1000,
			BurstLen:      64,
		},
	}
}

func mustModel(t *testing.T, cfg Config) *Model {
	t.Helper()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

// traceHash fingerprints the first n events of a model: every field of
// every event feeds one FNV-1a stream.
func traceHash(m *Model, n uint64) uint64 {
	h := fnv.New64a()
	for i := uint64(0); i < n; i++ {
		ev := m.At(i)
		fmt.Fprintf(h, "%d|%d|%d|%v|%v|%d|%v\n",
			ev.Index, ev.User, ev.Class, ev.Prefs.Classes, ev.Prefs.Weights, boolInt(ev.Drifted), ev.Prefs.Key())
	}
	return h.Sum64()
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestDeterministicAcrossModelsAndAccessOrder(t *testing.T) {
	m1 := mustModel(t, testConfig())
	m2 := mustModel(t, testConfig())
	const n = 500
	// Random-order access on a fresh model must reproduce sequential
	// streaming on another: events are pure functions of the index.
	st := m1.Stream(0)
	seq := make([]Event, n)
	for i := range seq {
		seq[i] = st.Next()
	}
	for i := n - 1; i >= 0; i-- {
		ev := m2.At(uint64(i))
		if fmt.Sprint(ev) != fmt.Sprint(seq[i]) {
			t.Fatalf("event %d differs across models/orders:\n %v\n %v", i, ev, seq[i])
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	cfg := testConfig()
	a := traceHash(mustModel(t, cfg), 200)
	cfg.Seed = 8
	b := traceHash(mustModel(t, cfg), 200)
	if a == b {
		t.Fatalf("seeds 7 and 8 produced identical traces (hash %x)", a)
	}
}

// TestGoldenTracePrefix pins the exact trace for a fixed seed. If this
// fails, the workload generator changed behavior: published scorecards
// are no longer comparable across versions, and the trace format version
// should be called out in the changelog.
func TestGoldenTracePrefix(t *testing.T) {
	const want = uint64(0xdf52bd7576539e69)
	if got := traceHash(mustModel(t, testConfig()), 256); got != want {
		t.Fatalf("golden trace hash = %#x, want %#x", got, want)
	}
}

func TestZipfHeadHeavy(t *testing.T) {
	m := mustModel(t, testConfig())
	const n = 4000
	counts := map[uint64]int{}
	for i := uint64(0); i < n; i++ {
		counts[m.At(i).User]++
	}
	if head := float64(counts[0]) / n; head < 0.15 {
		t.Fatalf("hottest user got %.0f%% of traffic, want ≥15%% under zipf s=1.2", head*100)
	}
	if len(counts) < 20 {
		t.Fatalf("only %d distinct users in %d events", len(counts), n)
	}
}

func TestEventsAlwaysValid(t *testing.T) {
	cfg := testConfig()
	cfg.Drift.BurstProb = 0.5 // exercise the burst path hard
	m := mustModel(t, cfg)
	for i := uint64(0); i < 2000; i++ {
		ev := m.At(i)
		if err := ev.Prefs.Validate(cfg.Classes); err != nil {
			t.Fatalf("event %d: invalid prefs: %v", i, err)
		}
		if ev.Class < 0 || ev.Class >= cfg.Classes {
			t.Fatalf("event %d: class %d outside [0,%d)", i, ev.Class, cfg.Classes)
		}
	}
}

func TestStationaryWorkloadKeepsKeys(t *testing.T) {
	cfg := testConfig()
	cfg.Users = 20
	cfg.Drift = DriftConfig{}
	m := mustModel(t, cfg)
	keys := map[uint64]string{}
	for i := uint64(0); i < 3000; i++ {
		ev := m.At(i)
		if ev.Drifted {
			t.Fatalf("event %d drifted in a stationary workload", i)
		}
		k := ev.Prefs.Key()
		if prev, ok := keys[ev.User]; ok && prev != k {
			t.Fatalf("user %d changed preference key %s → %s without drift", ev.User, prev, k)
		}
		keys[ev.User] = k
	}
	if len(keys) < 5 {
		t.Fatalf("expected ≥5 distinct users, got %d", len(keys))
	}
}

func TestFlipsProduceDriftWindows(t *testing.T) {
	cfg := testConfig()
	cfg.Users = 4
	cfg.Drift = DriftConfig{FlipEvery: 200, Lag: 80}
	m := mustModel(t, cfg)
	drifted, offClaim := 0, 0
	for i := uint64(0); i < 3000; i++ {
		ev := m.At(i)
		if !ev.Drifted {
			continue
		}
		drifted++
		if ev.Prefs.Weight(ev.Class) == 0 {
			offClaim++
		}
	}
	if drifted == 0 {
		t.Fatal("flip drift produced no lag-window events")
	}
	// During lag windows the drawn class comes from the next epoch's
	// preference set; most of those draws should miss the claimed set.
	if frac := float64(offClaim) / float64(drifted); frac < 0.3 {
		t.Fatalf("only %.0f%% of lag-window events were off-claim, want ≥30%%", frac*100)
	}
}

func TestGroupCorrelation(t *testing.T) {
	cfg := testConfig()
	groups := cfg.Groups
	m := mustModel(t, cfg)
	sameGroup, pairs := 0, 0
	for i := uint64(0); i < 500; i++ {
		ev := m.At(i)
		for a := 0; a < len(ev.Prefs.Classes); a++ {
			for b := a + 1; b < len(ev.Prefs.Classes); b++ {
				pairs++
				if groups[ev.Prefs.Classes[a]] == groups[ev.Prefs.Classes[b]] {
					sameGroup++
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no multi-class preference sets generated")
	}
	// Random pairs over 10 classes in 2 groups would co-group ~44% of
	// the time; home-group concentration should push well past that.
	if frac := float64(sameGroup) / float64(pairs); frac < 0.7 {
		t.Fatalf("only %.0f%% of preference class pairs share a group, want ≥70%%", frac*100)
	}
}

func TestDiurnalModulatesMix(t *testing.T) {
	cfg := testConfig()
	cfg.Users = 1
	cfg.Drift = DriftConfig{DiurnalPeriod: 512, DiurnalAmp: 0.8}
	m := mustModel(t, cfg)
	base := m.userBase(0, 0)
	if len(base.classes) < 2 {
		t.Skip("breadth-1 user; no mix to modulate")
	}
	minW, maxW := math.Inf(1), math.Inf(-1)
	for t8 := uint64(0); t8 < 512; t8 += 8 {
		w := m.driftedWeights(0, t8, base)
		if w[0] < minW {
			minW = w[0]
		}
		if w[0] > maxW {
			maxW = w[0]
		}
	}
	if maxW-minW < 0.1 {
		t.Fatalf("diurnal modulation moved lead weight only %.3f across a period", maxW-minW)
	}
}

func TestParseDrift(t *testing.T) {
	d, err := ParseDrift("flip=2000,lag=500,diurnal=5000,amp=0.4,burst-len=200,burst-prob=0.1,burst-weight=0.9")
	if err != nil {
		t.Fatalf("ParseDrift: %v", err)
	}
	want := DriftConfig{FlipEvery: 2000, Lag: 500, DiurnalPeriod: 5000, DiurnalAmp: 0.4,
		BurstLen: 200, BurstProb: 0.1, BurstWeight: 0.9}
	if d != want {
		t.Fatalf("ParseDrift = %+v, want %+v", d, want)
	}
	for _, spec := range []string{"", "off"} {
		d, err := ParseDrift(spec)
		if err != nil || !d.Stationary() {
			t.Fatalf("ParseDrift(%q) = %+v, %v; want stationary", spec, d, err)
		}
	}
	for _, bad := range []string{"flip", "flip=x", "amp=2", "nope=1", "burst-weight=1"} {
		if _, err := ParseDrift(bad); err == nil {
			t.Fatalf("ParseDrift(%q) accepted invalid spec", bad)
		}
	}
}
