// Package capnn is the public API of this CAP'NN reproduction: class-aware
// personalized neural-network inference (Hemmat, San Miguel, Davoodi,
// DAC 2020).
//
// CAP'NN takes an already-trained CNN and personalizes it for a user who
// only encounters a subset of the output classes: it prunes ineffectual
// units (rarely firing for the user's classes) and miseffectual units
// (firing toward confusing wrong classes) without retraining, while
// guaranteeing per-class accuracy degradation stays within ε. Three
// variants are provided: CAP'NN-B (per-class matrices + online
// intersection), CAP'NN-W (usage-weighted effective firing rates) and
// CAP'NN-M (miseffectual pruning on top of W).
//
// A typical flow:
//
//	net, _ := capnn.BuildVGG(capnn.DefaultVGGConfig(20))      // or load one
//	capnn.Train(net, trainSet, valSet, capnn.DefaultTrainConfig())
//	sys, _ := capnn.NewSystem(net, valSet, profileSet, nil, capnn.DefaultParams())
//	prefs := capnn.Uniform([]int{3, 7})                        // user's classes
//	res, _ := sys.Personalize(capnn.VariantM, prefs, testSet)  // prune + measure
//	fmt.Println(res.RelativeSize, res.Top1, res.BaseTop1)
//
// The heavy lifting lives in internal packages (tensor math, the NN
// substrate, firing-rate profiling, the pruning algorithms, the TPU-like
// device simulator, the analytical energy model, the class-unaware
// baselines, and the cloud personalization service); this package
// re-exports the surface a downstream user needs.
package capnn

import (
	"io"
	"net"
	"net/http"
	"time"

	"capnn/internal/baselines"
	"capnn/internal/cloud"
	"capnn/internal/cluster"
	"capnn/internal/core"
	"capnn/internal/data"
	"capnn/internal/energy"
	"capnn/internal/faults"
	"capnn/internal/firing"
	"capnn/internal/hw"
	"capnn/internal/metrics"
	"capnn/internal/metrics/anomaly"
	"capnn/internal/nn"
	"capnn/internal/parallel"
	"capnn/internal/qos"
	"capnn/internal/serve"
	"capnn/internal/store"
	"capnn/internal/train"
	"capnn/internal/workload"
)

// --- parallelism --------------------------------------------------------------

// SetWorkers installs a process-wide worker-count cap for every
// data-parallel pass (firing-rate profiling, evaluation, data-parallel
// training). n <= 0 restores the GOMAXPROCS default. Results are
// bit-identical for every worker count — the knob trades goroutines for
// wall-clock only. The cmd binaries expose it as -workers.
func SetWorkers(n int) { parallel.SetDefault(n) }

// Workers reports the worker count data-parallel passes currently use.
func Workers() int { return parallel.Default() }

// --- model substrate ------------------------------------------------------

// Network is a feed-forward CNN with prunable units.
type Network = nn.Network

// VGGConfig describes a VGG-16-style classifier (13 conv + 3 FC).
type VGGConfig = nn.VGGConfig

// Builder assembles custom sequential networks.
type Builder = nn.Builder

// BuildVGG constructs a VGG-16-style network.
func BuildVGG(cfg VGGConfig) (*Network, error) { return nn.BuildVGG(cfg) }

// DefaultVGGConfig returns the reference VGG-16-mini for a class count.
func DefaultVGGConfig(classes int) VGGConfig { return nn.DefaultVGGConfig(classes) }

// NewBuilder starts a custom network for [c,h,w] inputs with a seed.
func NewBuilder(c, h, w int, seed int64) *Builder { return nn.NewBuilder(c, h, w, seed) }

// SaveModel / LoadModel serialize networks (weights + prune masks).
func SaveModel(w io.Writer, net *Network) error { return nn.Save(w, net) }

// LoadModel reads a network written by SaveModel.
func LoadModel(r io.Reader) (*Network, error) { return nn.Load(r) }

// SaveModelFile / LoadModelFile are the file-path variants.
func SaveModelFile(path string, net *Network) error { return nn.SaveFile(path, net) }

// LoadModelFile reads a network from a file.
func LoadModelFile(path string) (*Network, error) { return nn.LoadFile(path) }

// Compact physically removes pruned units, producing the deployable model.
func Compact(net *Network) (*Network, error) { return nn.Compact(net) }

// CompactMasked compacts under masks passed as an argument rather than
// installed on the network — safe concurrently with serving.
func CompactMasked(net *Network, masks map[int][]bool) (*Network, error) {
	return nn.CompactMasked(net, masks)
}

// Compiled is a compacted network lowered to a flat op plan with pooled
// scratch; its Infer is bit-identical to the masked forward it replaces.
type Compiled = nn.Compiled

// Compile builds a Compiled for a (network, masks) pair, verifying
// bit-identity against the masked path before returning it.
func Compile(net *Network, masks map[int][]bool) (*Compiled, error) { return nn.Compile(net, masks) }

// --- data -----------------------------------------------------------------

// Dataset is a labeled image set.
type Dataset = data.Dataset

// SynthConfig parameterizes the synthetic class-prototype generator.
type SynthConfig = data.SynthConfig

// Generator produces synthetic datasets with confusion-group structure.
type Generator = data.Generator

// Sets bundles train/val/test/profile splits.
type Sets = data.Sets

// SetSizes gives per-class sample counts per split.
type SetSizes = data.SetSizes

// DefaultSynthConfig returns the harness generator settings for a class count.
func DefaultSynthConfig(classes int) SynthConfig { return data.DefaultSynthConfig(classes) }

// NewGenerator builds class prototypes for cfg.
func NewGenerator(cfg SynthConfig) (*Generator, error) { return data.NewGenerator(cfg) }

// MakeSets draws the four disjoint splits from a generator.
func MakeSets(gen *Generator, sz SetSizes) *Sets { return data.MakeSets(gen, sz) }

// --- training -------------------------------------------------------------

// TrainConfig controls a training run.
type TrainConfig = train.Config

// Eval summarizes classification quality.
type Eval = train.Eval

// DefaultTrainConfig returns the reference training settings.
func DefaultTrainConfig() TrainConfig { return train.DefaultConfig() }

// Train fits net on trainSet; valSet may be nil.
func Train(net *Network, trainSet, valSet *Dataset, cfg TrainConfig) error {
	_, err := train.Train(net, trainSet, valSet, cfg)
	return err
}

// Evaluate reports top-1/top-5/per-class accuracy of net on ds.
func Evaluate(net *Network, ds *Dataset) Eval { return train.Evaluate(net, ds) }

// FineTune briefly retrains a (possibly masked) network.
func FineTune(net *Network, trainSet, valSet *Dataset, epochs int, seed int64) error {
	return train.FineTune(net, trainSet, valSet, epochs, seed)
}

// --- CAP'NN core ------------------------------------------------------------

// Preferences is the user's class subset with usage weights.
type Preferences = core.Preferences

// Params are the ε / Tstart / step knobs of Algorithms 1–2.
type Params = core.Params

// Variant selects CAP'NN-B, -W or -M.
type Variant = core.Variant

// System bundles a trained model with its cloud-side pruning assets.
type System = core.System

// Result reports a pruning run's size and accuracy outcome.
type Result = core.Result

// Monitor tracks on-device predictions to derive preferences.
type Monitor = core.Monitor

// Rates holds class-specific firing-rate matrices.
type Rates = firing.Rates

// The three pruning variants.
const (
	VariantB = core.VariantB
	VariantW = core.VariantW
	VariantM = core.VariantM
)

// DefaultParams returns the paper's settings (ε=3%, Tstart=0.4, step=0.025).
func DefaultParams() Params { return core.DefaultParams() }

// Uniform builds equal-usage preferences over the given classes.
func Uniform(classes []int) Preferences { return core.Uniform(classes) }

// Weighted builds preferences from classes and (normalized) usage weights.
func Weighted(classes []int, weights []float64) (Preferences, error) {
	return core.Weighted(classes, weights)
}

// NewMonitor creates a prediction monitor over numClasses.
func NewMonitor(numClasses int) (*Monitor, error) { return core.NewMonitor(numClasses) }

// SlidingMonitor is a Monitor over only the most recent window
// observations — the view the serving tier's runtime ε-guard uses, so
// old usage cannot mask fresh drift.
type SlidingMonitor = core.SlidingMonitor

// NewSlidingMonitor creates a sliding monitor over numClasses classes
// keeping the most recent window observations.
func NewSlidingMonitor(numClasses, window int) (*SlidingMonitor, error) {
	return core.NewSlidingMonitor(numClasses, window)
}

// NewSystem profiles net (when rates is nil) and prepares it for pruning.
func NewSystem(net *Network, valSet, profileSet *Dataset, rates *Rates, params Params) (*System, error) {
	return core.NewSystem(net, valSet, profileSet, rates, params)
}

// ProfileRates computes class-specific firing rates over the given stages
// (nil stages = the paper's last-6-layers rule).
func ProfileRates(net *Network, profileSet *Dataset, stages []int) (*Rates, error) {
	if stages == nil {
		stages = firing.PrunableStages(net)
	}
	return firing.Compute(net, profileSet, stages)
}

// PrunableStages returns the paper's prunable stage indices for net.
func PrunableStages(net *Network) []int { return firing.PrunableStages(net) }

// --- hardware & energy ------------------------------------------------------

// DeviceConfig describes the TPU-like local device (Fig. 2).
type DeviceConfig = hw.Config

// HWCounts are per-inference operation and memory-access totals.
type HWCounts = hw.Counts

// EnergyComponents are per-operation energies (Table I).
type EnergyComponents = energy.Components

// DefaultDevice returns the edge-scale device used by the experiments.
func DefaultDevice() DeviceConfig { return hw.DefaultConfig() }

// PaperEnergies returns the component energies of the paper's Table I.
func PaperEnergies() EnergyComponents { return energy.PaperTable1() }

// SimulateDevice counts one inference's operations and accesses.
func SimulateDevice(net *Network, dev DeviceConfig) (HWCounts, error) {
	counts, _, err := hw.Simulate(net, dev)
	return counts, err
}

// EnergyOf estimates one inference's energy in picojoules.
func EnergyOf(net *Network, dev DeviceConfig, comp EnergyComponents) (float64, error) {
	return energy.OfNetwork(net, dev, comp)
}

// RelativeEnergy applies masks and returns pruned/original energy.
func RelativeEnergy(net *Network, masks map[int][]bool, dev DeviceConfig, comp EnergyComponents) (float64, error) {
	return energy.RelativeOfMasks(net, masks, dev, comp)
}

// --- baselines ---------------------------------------------------------------

// PruneCriterion selects a class-unaware pruning rule.
type PruneCriterion = baselines.Criterion

// Class-unaware criteria (He et al. [5]-style, Network Trimming [6]-style,
// ThiNet [9]-style).
const (
	ByWeightNorm     = baselines.ByWeightNorm
	ByMeanFiringRate = baselines.ByMeanFiringRate
	ByThiNet         = baselines.ByThiNet
)

// PruneUnaware applies a class-unaware baseline at the given fraction.
func PruneUnaware(net *Network, stages []int, fraction float64, crit PruneCriterion,
	rates *Rates, sampleSet *Dataset) (map[int][]bool, error) {
	return baselines.PruneUnaware(net, stages, fraction, crit, rates, sampleSet)
}

// --- cloud service -----------------------------------------------------------

// CloudServer personalizes models over TCP (Fig. 1a's pruning process).
type CloudServer = cloud.Server

// CloudClient fetches personalized models from a CloudServer, retrying
// transient failures with exponential backoff + full jitter.
type CloudClient = cloud.Client

// CloudRequest / CloudStats are the wire types.
type (
	CloudRequest = cloud.Request
	CloudStats   = cloud.Stats
)

// CloudConfig bounds a CloudServer's exposure to slow, dead or abusive
// peers (read/write deadlines, request size cap, in-flight limit).
type CloudConfig = cloud.Config

// CloudRetry is the client's retry policy.
type CloudRetry = cloud.Retry

// CloudError is the typed error CloudClient.Fetch returns; its Code and
// Retryable distinguish transient faults from permanent request errors.
type CloudError = cloud.Error

// CloudCode classifies a cloud response (ok / bad-request / busy /
// internal).
type CloudCode = cloud.Code

// NewCloudServer wraps a prepared System with default limits.
func NewCloudServer(sys *System) *CloudServer { return cloud.NewServer(sys) }

// NewCloudServerWith wraps a prepared System with explicit limits.
func NewCloudServerWith(sys *System, cfg CloudConfig) *CloudServer {
	return cloud.NewServerWith(sys, cfg)
}

// NewCloudClient builds a client for the given address.
func NewCloudClient(addr string) *CloudClient { return cloud.NewClient(addr) }

// --- inference serving --------------------------------------------------------

// ServeServer is the multi-user inference server: it deduplicates
// personalization work with a mask cache (singleflight-filled, LRU) and
// micro-batches concurrent requests that share a preference key into
// single masked forwards.
type ServeServer = serve.Server

// ServeClient requests inferences from a ServeServer over TCP.
type ServeClient = serve.Client

// ServeConfig tunes batching (MaxBatch/MaxWait), the worker pool, the
// mask cache, and the admission limits.
type ServeConfig = serve.Config

// ServeStats is a snapshot of the serving metrics: cache hits/misses/
// evictions, batch-size histogram, queue depth, per-stage latency.
type ServeStats = serve.Stats

// ServeResult is one served inference: logits, argmax class, the
// micro-batch size it rode in, and whether its masks were cached.
type ServeResult = serve.Result

// ServeError is the typed serving failure; it reuses CloudCode so
// clients share one retry policy across both services.
type ServeError = serve.Error

// ServeRequest / ServeResponse are the wire types.
type (
	ServeRequest  = serve.WireRequest
	ServeResponse = serve.WireResponse
)

// NewServeServer wraps a prepared System with default serving limits.
func NewServeServer(sys *System) *ServeServer { return serve.NewServer(sys) }

// NewServeServerWith wraps a prepared System with explicit limits.
func NewServeServerWith(sys *System, cfg ServeConfig) *ServeServer {
	return serve.NewServerWith(sys, cfg)
}

// NewServeClient builds an inference client for the given address.
func NewServeClient(addr string) *ServeClient { return serve.NewClient(addr) }

// DefaultServeConfig returns the production serving defaults.
func DefaultServeConfig() ServeConfig { return serve.DefaultConfig() }

// ServeQoS is a request's quality-of-service envelope: deadline,
// priority lane, and tenant. The zero value (no deadline, interactive
// lane, default tenant) reproduces pre-QoS behavior.
type ServeQoS = serve.QoS

// Lane is a request's priority class: interactive traffic is served
// first and may use the full queue; bulk traffic yields under pressure.
type Lane = qos.Lane

// The two priority lanes.
const (
	LaneInteractive = qos.LaneInteractive
	LaneBulk        = qos.LaneBulk
)

// QuotaLimit is one token bucket's shape (rate/s, burst); QuotaLimits a
// tenant's per-lane pair; AdmissionConfig the gateway's full quota set.
type (
	QuotaLimit      = qos.Limit
	QuotaLimits     = qos.LaneLimits
	AdmissionConfig = qos.LimiterConfig
)

// ParseQuotaLimit parses "rate[:burst]" quota flag syntax.
func ParseQuotaLimit(s string) (QuotaLimit, error) { return qos.ParseLimit(s) }

// BreakerState is the repersonalization circuit breaker's state
// (closed / open / half-open), reported in ServeStats.
type BreakerState = serve.BreakerState

// The circuit breaker states.
const (
	BreakerClosed   = serve.BreakerClosed
	BreakerOpen     = serve.BreakerOpen
	BreakerHalfOpen = serve.BreakerHalfOpen
)

// --- cluster tier -------------------------------------------------------------

// Gateway is the sharded serving tier's front door: it routes each
// request's placement key (variant + Preferences.Key) to the serve
// node that owns it on a consistent-hash ring, over pooled persistent
// connections, failing over to the key's next ring replica when a node
// dies and health-checking every node through a closed/open/half-open
// breaker.
type Gateway = cluster.Gateway

// GatewayConfig tunes placement (Seed/VirtualNodes/Replication),
// failover budgets, health probing, and the client-facing limits.
type GatewayConfig = cluster.Config

// GatewayStats snapshots a gateway's routing metrics: ring version,
// request/failover/retry counters, and per-node breaker states with
// probe latencies.
type GatewayStats = cluster.Stats

// GatewayNodeStats is one serve node as the gateway sees it.
type GatewayNodeStats = cluster.NodeStats

// Ring is the immutable consistent-hash ring: placement is a pure
// function of (seed, virtual-node count, member set), so independent
// gateways agree on routing without coordination.
type Ring = cluster.Ring

// NewRing builds a consistent-hash ring over the given member nodes.
func NewRing(seed int64, vnodes int, nodes []string) (*Ring, error) {
	return cluster.NewRing(seed, vnodes, nodes)
}

// NewGateway builds a gateway over the given serve-node addresses and
// starts its health prober.
func NewGateway(nodes []string, cfg GatewayConfig) (*Gateway, error) {
	return cluster.NewGateway(nodes, cfg)
}

// DefaultGatewayConfig returns the production gateway defaults.
func DefaultGatewayConfig() GatewayConfig { return cluster.DefaultConfig() }

// ScrapeGatewayStats fetches a remote gateway's routing stats over the
// wire (the OpStats scrape).
func ScrapeGatewayStats(addr string, timeout time.Duration) (GatewayStats, error) {
	return cluster.ScrapeStats(addr, timeout)
}

// Wire operations a ServeRequest can carry: inference (the zero value),
// a remote stats scrape, or a health probe.
const (
	OpInfer  = serve.OpInfer
	OpStats  = serve.OpStats
	OpHealth = serve.OpHealth
)

// --- observability ------------------------------------------------------------

// MetricsRegistry is the dependency-free metrics registry behind every
// serving-tier stat: counters, gauges, labeled families, and latency
// histograms with Prometheus text exposition (WritePrometheus) and a
// human summary (WriteSummary). serve.Server and cluster.Gateway each
// own one, reachable via their Metrics() accessors.
type MetricsRegistry = metrics.Registry

// EventLog is the bounded structured event ring (sheds, guard trips,
// heals, failovers, breaker transitions, shard anomalies) behind
// /debug/events; Events() on a server or gateway returns its log.
type EventLog = metrics.EventLog

// MetricsEvent is one structured observability event.
type MetricsEvent = metrics.Event

// NewMetricsMux mounts the standard observability surface — /metrics,
// /debug/events, and a /debug index — over a registry and event log;
// mount extra endpoints on it before serving.
func NewMetricsMux(reg *MetricsRegistry, log *EventLog) *metrics.Mux {
	return metrics.NewMux(reg, log)
}

// ServeMetrics serves an observability mux on addr in the background,
// returning the bound address and a stop function.
func ServeMetrics(addr string, h http.Handler) (string, func() error, error) {
	return metrics.Serve(addr, h)
}

// AnomalyConfig tunes the gateway's per-shard anomaly detector
// (GatewayConfig.Anomaly): rolling recent-vs-baseline windows over
// QPS, forward latency, cache hit ratio, and guard-trip rate.
type AnomalyConfig = anomaly.Config

// AnomalyVerdict is one shard's current anomaly judgement.
type AnomalyVerdict = anomaly.Verdict

// ClusterView is the gateway's /debug/cluster document: membership,
// per-node health, and live anomaly verdicts.
type ClusterView = cluster.ClusterView

// --- workload modeling ---------------------------------------------------------

// WorkloadConfig parameterizes the deterministic streaming workload
// model: zipf user popularity over a (possibly huge) population,
// preferences correlated with the dataset's confusion groups, and
// class-skew drift.
type WorkloadConfig = workload.Config

// WorkloadModel compiles a WorkloadConfig into a replayable trace:
// event i is a pure function of (config, i), so million-user traces
// stream in O(1) memory and are bit-identical regardless of access
// order or worker count.
type WorkloadModel = workload.Model

// WorkloadEvent is one trace event: the drawn user, the preferences
// their device claims on the wire, the class of the input they send,
// and whether the event sits in a drift window (claimed preferences
// lagging the actual mix).
type WorkloadEvent = workload.Event

// WorkloadStream is a sequential cursor over a model's trace.
type WorkloadStream = workload.Stream

// WorkloadDrift shapes per-user preference drift: diurnal sway, usage
// bursts, and sudden skew flips whose claimed preferences lag behind
// the actual mix.
type WorkloadDrift = workload.DriftConfig

// NewWorkloadModel validates cfg and compiles the workload model.
func NewWorkloadModel(cfg WorkloadConfig) (*WorkloadModel, error) { return workload.NewModel(cfg) }

// ParseWorkloadDrift parses a -drift flag spec like
// "flip=5000,lag=1000,diurnal=20000,burst-len=64" ("" or "off" =
// stationary).
func ParseWorkloadDrift(spec string) (WorkloadDrift, error) { return workload.ParseDrift(spec) }

// --- crash-safe state store ---------------------------------------------------

// StateStore is the atomic, versioned, CRC-checksummed checkpoint store
// the binaries use to survive kill -9: each commit is an all-or-nothing
// generation, corruption is detected on read and rolled back to the
// newest good generation, and old generations are pruned by retention.
type StateStore = store.Store

// StateTxn stages one generation's artifacts before an atomic commit.
type StateTxn = store.Txn

// StateGeneration is a committed, verified checkpoint generation.
type StateGeneration = store.Generation

// TrainMeta records training progress inside a checkpoint so
// capnn-train resumes instead of starting over.
type TrainMeta = store.TrainMeta

// Canonical artifact names used by the CAP'NN binaries.
const (
	ArtifactModel      = store.ArtifactModel
	ArtifactRates      = store.ArtifactRates
	ArtifactMaskCache  = store.ArtifactMaskCache
	ArtifactTrainMeta  = store.ArtifactTrainMeta
	ArtifactRingConfig = store.ArtifactRingConfig
)

// RingConfig is the persisted cluster-ring configuration (seed,
// virtual nodes, replication, version, members) a Gateway restores at
// startup so placement survives restarts.
type RingConfig = store.RingConfig

// OpenStateStore opens (or creates) a checkpoint store with the default
// retention of DefaultKeep generations.
func OpenStateStore(dir string) (*StateStore, error) { return store.Open(dir) }

// OpenStateStoreKeep opens a checkpoint store retaining the newest keep
// generations.
func OpenStateStoreKeep(dir string, keep int) (*StateStore, error) { return store.OpenKeep(dir, keep) }

// --- fault injection ----------------------------------------------------------

// ChaosPlan configures deterministic, seedable transport fault
// injection (connection drops, mid-stream closes, latency, payload
// corruption) for resilience testing.
type ChaosPlan = faults.Plan

// ParseChaosPlan parses a -chaos style spec, e.g.
// "seed=7,drop=0.1,close=0.2,corrupt=0.2,latency=20ms".
func ParseChaosPlan(spec string) (ChaosPlan, error) { return faults.ParsePlan(spec) }

// WrapChaosListener injects the plan's faults into every connection the
// listener accepts; serve it with CloudServer.Serve.
func WrapChaosListener(ln net.Listener, plan ChaosPlan) net.Listener {
	return faults.WrapListener(ln, plan)
}

// --- cloud device lifecycle ---------------------------------------------------

// CloudDevice models the device-side lifecycle: local inference, the
// monitoring period, drift detection, and repersonalization when the
// user's class usage changes (paper §II).
type CloudDevice = cloud.Device

// NewCloudDevice wraps a client and the initial (commodity) model.
func NewCloudDevice(client *CloudClient, initial *Network, numClasses int, variant string) (*CloudDevice, error) {
	return cloud.NewDevice(client, initial, numClasses, variant)
}

// --- energy breakdown / packed rates -----------------------------------------

// LayerEnergy is one layer's energy contribution by component family.
type LayerEnergy = energy.LayerEnergy

// EnergyBreakdown returns per-layer energies and the total for one
// inference on the device.
func EnergyBreakdown(net *Network, dev DeviceConfig, comp EnergyComponents) ([]LayerEnergy, float64, error) {
	return energy.Breakdown(net, dev, comp)
}

// PackedRates is the bit-packed cloud storage format for firing rates
// (paper §V-C, 3-bit by default).
type PackedRates = firing.PackedRates

// PackRates quantizes and bit-packs firing rates for cloud storage.
func PackRates(r *Rates, bits int) (*PackedRates, error) { return firing.Pack(r, bits) }

// RateOverhead reports the §V-C memory overhead of storing rates at the
// given bit width against a model with paramCount 16-bit parameters.
func RateOverhead(r *Rates, bits, paramCount int) (firing.Overhead, error) {
	return firing.MemoryOverhead(r, bits, paramCount)
}

// ThiNetGreedy runs the faithful greedy ThiNet [9] channel selection for
// one stage (PruneUnaware's ByThiNet is its cheap one-shot form).
func ThiNetGreedy(net *Network, stage int, fraction float64, sampleSet *Dataset, locations int, seed int64) ([]bool, error) {
	return baselines.ThiNetGreedy(net, stage, fraction, sampleSet, locations, seed)
}
